"""Portal pass simulation: physics + protocol, end to end.

This module replaces the paper's lab: it takes a :class:`Portal`
(antennas + readers), one or more :class:`CarrierGroup` objects (tags
riding a motion profile together with their occluding geometry), and a
calibrated :class:`SimulationParameters`, and produces the
:class:`~repro.sim.trace.ReadTrace` a real reader would have reported.

Per trial:

1. shadowing is sampled once per (tag, antenna) link — trials differ
   the way physical repetitions differ;
2. the carrier moves along its motion profile while each reader runs
   Gen 2 inventory rounds, TDMA-cycling its antennas;
3. for every round, each candidate tag's link budget is evaluated at
   the carrier's current position — occlusion chords through box
   contents and bodies, mount detuning, inter-tag coupling, polarization
   and pattern losses, plus a fresh small-scale fading draw — yielding
   the tag's energization and decode probability for that round;
4. with multiple readers and no dense-reader mode, each reader's
   receive floor is raised by the other readers' coupled carriers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only, avoids a cycle
    from ..faults.plan import CoverageReport, FaultPlan

from ..obs.recorder import (
    PassObservation,
    PassRecording,
    Recorder,
    TracingSeedSequence,
)
from ..obs.records import DwellLinkRecord
from ..protocol.dense_reader import (
    CO_CHANNEL_DWELL_PROBABILITY,
    ReaderRadio,
    interference_at_receiver_dbm,
)
from ..protocol.gen2 import (
    InventorySession,
    QAlgorithm,
    TagChannel,
    run_inventory_round,
)
from ..protocol.timing import DEFAULT_TIMING, Gen2Timing
from ..rf.coupling import CouplingModel
from ..rf.geometry import Vec3, segment_sphere_chord_length
from ..rf.units import linear_to_db, sum_powers_dbm
from ..rf.link import (
    LinkEnvironment,
    LinkGeometry,
    LinkResult,
    LinkTerms,
    compose_link,
    compute_link_terms,
    evaluate_link,
)
from ..rf.materials import Material
from ..sim.events import TagReadEvent
from ..sim.rng import SeedSequence
from ..sim.trace import ReadTrace
from .motion import LinearPass, StationaryPlacement
from .portal import AntennaInstallation, Portal, ReaderAssignment
from .tags import Tag

Motion = Union[LinearPass, StationaryPlacement]

#: Head-room the forward-link short-circuit allows for small-scale
#: fading before declaring a tag un-energizable. A +20 dB fade is a
#: linear power gain of 100; for any Rician K the unit-mean envelope
#: needs a >14-sigma Gaussian pair to reach it, which a seeded PRNG
#: will not produce in the lifetime of the universe. When even this
#: head-room cannot close the forward budget, the fading draw and the
#: full link composition are skipped for the round.
MAX_FADING_HEADROOM_DB = 20.0


class PassLinkCache:
    """Per-pass memo of the link-budget terms that do not change per round.

    ``_run_reader_timeline`` consults the link budget for every
    (candidate tag, inventory round) pair — hundreds of evaluations per
    pass, most of which recompute values that are pinned for the whole
    pass or for the current dwell geometry:

    * **geometry** — antenna pattern gain, tag pattern gain,
      polarization loss, deterministic path gain, and occluder chords,
      keyed by ``(antenna_id, epc, tag world position)``. Exact float
      positions are used (not quantized), so a hit replays terms that
      are *bit-identical* to recomputation; stationary placements hit on
      every round after the first, moving passes hit whenever two rounds
      sample the same position (and still dedup the double obstruction
      evaluation within a round).
    * **fading normals** — the standard-normal pair behind each Rician
      draw, keyed by ``(reader_id, antenna_id, epc, coherence cell)``.
      The serial simulator derives a fresh seeded stream from exactly
      that tuple every round, so within one coherence cell the draw is
      the same pair of normals each time; caching them skips the
      sha256-based stream construction while the K-factor penalty is
      still applied per round (obstruction may vary).

    One cache covers one :meth:`PortalPassSimulator.run_pass` call (all
    readers — geometry terms are reader-independent, so a mux takeover
    re-uses the owning reader's entries). Counters feed
    ``PortalPassSimulator._last_cache_stats`` and the bench harness.
    """

    __slots__ = (
        "geometry",
        "fading_normals",
        "geometry_hits",
        "geometry_misses",
        "fading_hits",
        "fading_misses",
        "short_circuits",
    )

    def __init__(self) -> None:
        self.geometry: Dict[
            Tuple[str, str, float, float, float],
            Tuple[LinkTerms, float, bool],
        ] = {}
        self.fading_normals: Dict[
            Tuple[str, str, str, int, int, int], Tuple[float, float]
        ] = {}
        self.geometry_hits = 0
        self.geometry_misses = 0
        self.fading_hits = 0
        self.fading_misses = 0
        self.short_circuits = 0

    def stats(self) -> Dict[str, int]:
        """Counter snapshot (plain dict, safe to pickle/serialise)."""
        return {
            "geometry_hits": self.geometry_hits,
            "geometry_misses": self.geometry_misses,
            "fading_hits": self.fading_hits,
            "fading_misses": self.fading_misses,
            "short_circuits": self.short_circuits,
        }


@dataclass(frozen=True)
class Occluder:
    """A blocking blob riding with a carrier (box content, torso)."""

    centre: Vec3
    radius_m: float
    material: Material
    reflective: bool = False

    def __post_init__(self) -> None:
        if self.radius_m <= 0.0:
            raise ValueError(f"radius must be positive, got {self.radius_m!r}")


@dataclass
class CarrierGroup:
    """Tags plus occluders sharing one motion profile.

    ``tags`` and ``occluders`` positions are in the carrier frame;
    world positions at time ``t`` add ``motion.position_at(t)``.

    ``clutter_sigma_db`` models *carrier-local* multipath: scatterers
    that ride along with the tags (the other metal boxes on the cart,
    the carrier's own body). Because they move with the tag, the fade
    they cause is frozen for the whole pass — one draw per (tag,
    antenna, trial) — unlike the motion-decorrelated small-scale fading
    of the fixed environment. This static component is what makes a
    badly placed tag miss an *entire* pass rather than flicker.
    """

    motion: Motion
    tags: List[Tag] = field(default_factory=list)
    occluders: List[Occluder] = field(default_factory=list)
    clutter_sigma_db: float = 0.0

    def tag_world_position(self, tag: Tag, t: float) -> Vec3:
        return self.motion.position_at(t) + tag.local_position

    def occluder_world_centre(self, occluder: Occluder, t: float) -> Vec3:
        return self.motion.position_at(t) + occluder.centre


@dataclass(frozen=True)
class SimulationParameters:
    """Calibration knobs of the pass simulator.

    Values are set by :mod:`repro.core.calibration` to land the
    single-opportunity reliabilities near the paper's Section 3
    measurements; see that module for the rationale behind each number.
    """

    #: Cap on total through-material loss: energy diffracts around
    #: obstacles, so even a router stack is not a perfect screen.
    obstruction_cap_db: float = 25.0
    #: Rician K-factor penalty per dB of obstruction loss (a
    #: dimensionless dB/dB ratio): blocked paths lose their
    #: line-of-sight component and fade harder.
    k_penalty_per_obstruction: float = 0.5
    #: Logistic slope (dB) mapping reverse-link margin to decode
    #: probability; models coding/BER softness around the threshold.
    decode_slope_db: float = 1.5
    #: Receiver capture probability for 2-way collisions.
    capture_probability: float = 0.1
    #: TDMA dwell per antenna before the reader switches.
    tdma_slot_s: float = 0.10
    #: Chance per dwell that two non-DRM readers land co-channel.
    co_channel_probability: float = CO_CHANNEL_DWELL_PROBABILITY
    #: Inter-tag near-field coupling model.
    coupling: CouplingModel = field(default_factory=CouplingModel)
    #: Reflection bonus (dB) when a reflective occluder backs the tag.
    reflection_gain_db: float = 4.0
    #: How far behind the tag (m) a reflector still helps.
    reflection_range_m: float = 1.2
    #: Spatial coherence of small-scale fading: the channel decorrelates
    #: only when the tag *moves* about half a wavelength (0.164 m at
    #: 915 MHz). Stationary tags keep one fading realisation for a whole
    #: trial; a 1 m/s cart sees a fresh one roughly every 0.16 s.
    fading_coherence_m: float = 0.164
    #: How long an orphaned antenna stays dark before the portal's RF
    #: multiplexer hands it to a backup reader (see
    #: :attr:`~repro.world.portal.ReaderAssignment.backup_antennas`).
    #: The mux fails over on early evidence — a single missed 0.25 s
    #: poll, the same event that makes the supervisor flag the reader
    #: degraded — since rerouting a passive port to the standby is
    #: cheap and instantly reversible if the owner answers again.
    mux_takeover_delay_s: float = 0.25
    #: Gen 2 Q-algorithm bounds for each reader's inventory rounds. The
    #: defaults match :class:`~repro.protocol.gen2.QAlgorithm`; the
    #: knobs exist so experiments (and the miss-cause tests) can pin the
    #: frame size — ``q_initial=0, q_max=0`` forces one-slot frames,
    #: which makes any 2-tag population collide every round.
    q_initial: int = 4
    q_min: int = 0
    q_max: int = 15


@dataclass
class PassResult:
    """Everything observed during one portal pass (one trial)."""

    trace: ReadTrace
    duration_s: float
    rounds: int
    #: Infrastructure liveness during this pass; ``None`` for a
    #: fault-free run (full coverage implied). Downstream tracking
    #: decisions consume this to avoid conflating "tag absent" with
    #: "reader blind".
    coverage: Optional["CoverageReport"] = None
    #: Frozen observability payload when the simulator held a live
    #: :class:`~repro.obs.recorder.Recorder`; ``None`` otherwise. Rides
    #: through pickling, which is how parallel workers ship their
    #: observations back to the parent with the results.
    obs: Optional[PassObservation] = None

    @property
    def read_epcs(self) -> Set[str]:
        return set(e.epc for e in self.trace)

    def tags_read(self, epcs: Sequence[str]) -> int:
        """How many of ``epcs`` were read at least once."""
        seen = self.read_epcs
        return sum(1 for epc in epcs if epc in seen)


class PortalPassSimulator:
    """Runs seeded portal passes for a fixed portal and link environment."""

    def __init__(
        self,
        portal: Portal,
        env: Optional[LinkEnvironment] = None,
        params: Optional[SimulationParameters] = None,
        timing: Gen2Timing = DEFAULT_TIMING,
        use_link_cache: bool = True,
        recorder: Optional[Recorder] = None,
    ) -> None:
        self.portal = portal
        self.env = env if env is not None else LinkEnvironment()
        self.params = params if params is not None else SimulationParameters()
        self.timing = timing
        #: Observability sink; ``None`` (the default) keeps every hook
        #: site down to a single identity test — no records, no
        #: allocation, bit-identical results.
        self.recorder = recorder
        #: The per-pass link cache is bit-identical to direct evaluation
        #: (see :class:`PassLinkCache`); the flag exists for the parity
        #: tests and for A/B benchmarking, not because results differ.
        self.use_link_cache = use_link_cache
        #: Counter snapshot from the most recent :meth:`run_pass`;
        #: ``None`` before the first pass or when the cache is disabled.
        self._last_cache_stats: Optional[Dict[str, int]] = None

    # -- physics ---------------------------------------------------------

    def _obstruction_db(
        self,
        carriers: Sequence[CarrierGroup],
        antenna_pos: Vec3,
        tag_pos: Vec3,
        t: float,
    ) -> Tuple[float, bool]:
        """Total through-material loss on the antenna->tag path, capped.

        Returns (loss_db, reflector_behind): the second element reports
        whether a reflective occluder sits behind the tag (for the body
        reflection bonus).
        """
        total = 0.0
        reflector_behind = False
        ray_dir = tag_pos - antenna_pos
        ray_len = ray_dir.norm()
        if ray_len < 1e-9:
            return 0.0, False
        ray_unit = ray_dir / ray_len
        for carrier in carriers:
            for occluder in carrier.occluders:
                centre = carrier.occluder_world_centre(occluder, t)
                chord = segment_sphere_chord_length(
                    antenna_pos, tag_pos, centre, occluder.radius_m
                )
                if chord > 0.0:
                    total += occluder.material.through_loss_db(chord)
                elif occluder.reflective:
                    # Is the occluder behind the tag along the ray?
                    along = (centre - antenna_pos).dot(ray_unit)
                    lateral = (
                        (centre - antenna_pos) - ray_unit * along
                    ).norm()
                    behind_by = along - ray_len
                    if (
                        0.0 < behind_by <= self.params.reflection_range_m
                        and lateral <= occluder.radius_m + 0.3
                    ):
                        reflector_behind = True
        return min(total, self.params.obstruction_cap_db), reflector_behind

    def _coupling_db(
        self, carriers: Sequence[CarrierGroup], carrier: CarrierGroup, tag: Tag
    ) -> float:
        """Near-field coupling penalty from this carrier's other tags.

        Carrier-local tag geometry is static, so distances at t=0 hold
        for the whole pass.
        """
        positions = [t.local_position for t in carrier.tags]
        axes = [t.world_dipole_axis() for t in carrier.tags]
        index = next(
            i for i, t in enumerate(carrier.tags) if t.epc == tag.epc
        )
        penalty = self.params.coupling.total_penalty_db(index, positions, axes)
        return tag.coupling_factor() * penalty

    def _evaluate_tag(
        self,
        carriers: Sequence[CarrierGroup],
        carrier: CarrierGroup,
        tag: Tag,
        antenna: AntennaInstallation,
        reader: ReaderAssignment,
        t: float,
        shadowing_db: float,
        fading_gain: float,
        interference_dbm: Optional[float],
        coupling_db: float,
        extra_loss_db: float = 0.0,
    ) -> LinkResult:
        """One full link-budget evaluation for a read attempt at time ``t``.

        ``extra_loss_db`` models port-level impairments (a detuned or
        water-logged antenna from a fault plan): applied at the reader
        port, it attenuates the forward link and — through the tag's
        reduced backscatter power — the reverse link as well.
        """
        tag_pos = carrier.tag_world_position(tag, t)
        obstruction_db, reflector = self._obstruction_db(
            carriers, antenna.position, tag_pos, t
        )
        gain_bonus = self.params.reflection_gain_db if reflector else 0.0
        geometry = LinkGeometry(
            antenna_position=antenna.position,
            antenna_boresight=antenna.boresight,
            tag_position=tag_pos,
            tag_axis=tag.world_dipole_axis(),
        )
        tag_gain_override = None
        if tag.design is not None:
            # Alternative inlay: its own pattern replaces the stock
            # dipole (note the arriving-wave direction is -direction).
            tag_gain_override = tag.pattern_gain_dbi(-geometry.direction)
        return evaluate_link(
            self.env,
            reader.tx_power_dbm + gain_bonus - extra_loss_db,
            geometry,
            obstruction_loss_db=obstruction_db,
            tag_detuning_db=tag.detuning_db(),
            coupling_penalty_db=coupling_db,
            shadowing_db=shadowing_db,
            fading_power_gain=fading_gain,
            interference_dbm=interference_dbm,
            tag_gain_override_dbi=tag_gain_override,
        )

    def _evaluate_tag_cached(
        self,
        cache: PassLinkCache,
        carriers: Sequence[CarrierGroup],
        carrier: CarrierGroup,
        tag: Tag,
        antenna: AntennaInstallation,
        reader: ReaderAssignment,
        t: float,
        shadowing_db: float,
        detuning_db: float,
        coupling_db: float,
        interference_dbm: Optional[float],
        fault_loss_db: float,
        seeds: SeedSequence,
        trial: int,
        rec: Optional[PassRecording] = None,
    ) -> Optional[LinkResult]:
        """Cache-assisted equivalent of the per-round link evaluation.

        Returns ``None`` when the forward link cannot close under any
        plausible fading draw (see :data:`MAX_FADING_HEADROOM_DB`): the
        tag is not energized, so the caller can report a dead
        :class:`~repro.protocol.gen2.TagChannel` without drawing fading
        or composing the budget. Otherwise the returned
        :class:`LinkResult` is bit-identical to what the uncached path
        produces for the same round.
        """
        tag_pos = carrier.tag_world_position(tag, t)
        geo_key = (antenna.antenna_id, tag.epc, tag_pos.x, tag_pos.y, tag_pos.z)
        entry = cache.geometry.get(geo_key)
        if entry is None:
            cache.geometry_misses += 1
            obstruction_db, reflector = self._obstruction_db(
                carriers, antenna.position, tag_pos, t
            )
            geometry = LinkGeometry(
                antenna_position=antenna.position,
                antenna_boresight=antenna.boresight,
                tag_position=tag_pos,
                tag_axis=tag.world_dipole_axis(),
            )
            tag_gain_override = None
            if tag.design is not None:
                tag_gain_override = tag.pattern_gain_dbi(-geometry.direction)
            terms = compute_link_terms(self.env, geometry, tag_gain_override)
            entry = (terms, obstruction_db, reflector)
            cache.geometry[geo_key] = entry
        else:
            cache.geometry_hits += 1
        terms, obstruction_db, reflector = entry
        gain_bonus = self.params.reflection_gain_db if reflector else 0.0
        tx_power = reader.tx_power_dbm + gain_bonus - fault_loss_db
        # Forward budget with the fading term left out: if even a +20 dB
        # fade cannot wake the chip, skip the draw and the composition.
        forward_no_fade = (
            tx_power
            - self.env.cable_loss_db
            + terms.reader_gain_dbi
            + (terms.path_gain_db + shadowing_db)
            + terms.tag_gain_dbi
            - terms.polarization_loss_db
            - (obstruction_db + detuning_db + coupling_db)
        )
        if forward_no_fade + MAX_FADING_HEADROOM_DB < self.env.tag_sensitivity_dbm:
            cache.short_circuits += 1
            if rec is not None:
                rec.link(
                    self._link_record(
                        terms,
                        tag,
                        antenna,
                        reader,
                        t,
                        trial,
                        gain_bonus,
                        shadowing_db,
                        obstruction_db,
                        detuning_db,
                        coupling_db,
                        fault_loss_db,
                        interference_dbm,
                        fading_db=None,
                        result=None,
                    ),
                    no_fade_margin_db=(
                        forward_no_fade - self.env.tag_sensitivity_dbm
                    ),
                )
            return None
        obstructed_k_penalty = (
            obstruction_db * self.params.k_penalty_per_obstruction
        )
        cell = self.params.fading_coherence_m
        bin_key = (
            int(tag_pos.x // cell),
            int(tag_pos.y // cell),
            int(tag_pos.z // cell),
        )
        fading_key = (
            reader.reader_id,
            antenna.antenna_id,
            tag.epc,
            bin_key[0],
            bin_key[1],
            bin_key[2],
        )
        normals = cache.fading_normals.get(fading_key)
        if normals is None:
            cache.fading_misses += 1
            fading_rng = seeds.trial_stream(
                f"fading:{reader.reader_id}:{antenna.antenna_id}:{tag.epc}:"
                f"{bin_key[0]}:{bin_key[1]}:{bin_key[2]}",
                trial,
            )
            normals = (fading_rng.gauss(0.0, 1.0), fading_rng.gauss(0.0, 1.0))
            cache.fading_normals[fading_key] = normals
        else:
            cache.fading_hits += 1
        fading_gain = self.env.channel.fading.degraded(
            obstructed_k_penalty
        ).power_gain_from_normals(normals[0], normals[1])
        result = compose_link(
            self.env,
            tx_power,
            terms,
            obstruction_loss_db=obstruction_db,
            tag_detuning_db=detuning_db,
            coupling_penalty_db=coupling_db,
            shadowing_db=shadowing_db,
            fading_power_gain=fading_gain,
            interference_dbm=interference_dbm,
        )
        if rec is not None:
            fading_db = linear_to_db(max(fading_gain, 1e-300))
            rec.link(
                self._link_record(
                    terms,
                    tag,
                    antenna,
                    reader,
                    t,
                    trial,
                    gain_bonus,
                    shadowing_db,
                    obstruction_db,
                    detuning_db,
                    coupling_db,
                    fault_loss_db,
                    interference_dbm,
                    fading_db=fading_db,
                    result=result,
                ),
                no_fade_margin_db=result.forward_margin_db - fading_db,
            )
        return result

    def _link_record(
        self,
        terms: LinkTerms,
        tag: Tag,
        antenna: AntennaInstallation,
        reader: ReaderAssignment,
        t: float,
        trial: int,
        gain_bonus: float,
        shadowing_db: float,
        obstruction_db: float,
        detuning_db: float,
        coupling_db: float,
        fault_loss_db: float,
        interference_dbm: Optional[float],
        fading_db: Optional[float],
        result: Optional[LinkResult],
    ) -> DwellLinkRecord:
        """Build the waterfall record for one evaluation (recording only).

        ``result=None`` means the evaluation short-circuited before the
        fading draw; the composed-budget fields stay ``None``. Summing
        the record's terms (gains minus losses, fault loss and cable
        loss included) reproduces ``forward_power_dbm`` exactly.
        """
        return DwellLinkRecord(
            time=t,
            trial=trial,
            reader_id=reader.reader_id,
            antenna_id=antenna.antenna_id,
            epc=tag.epc,
            tx_power_dbm=reader.tx_power_dbm + gain_bonus,
            cable_loss_db=self.env.cable_loss_db,
            reader_gain_dbi=terms.reader_gain_dbi,
            path_gain_db=terms.path_gain_db,
            shadowing_db=shadowing_db,
            tag_gain_dbi=terms.tag_gain_dbi,
            polarization_loss_db=terms.polarization_loss_db,
            obstruction_db=obstruction_db,
            detuning_db=detuning_db,
            coupling_db=coupling_db,
            fault_loss_db=fault_loss_db,
            fading_db=fading_db,
            interference_dbm=interference_dbm,
            forward_power_dbm=(
                result.forward_power_dbm if result is not None else None
            ),
            forward_margin_db=(
                result.forward_margin_db if result is not None else None
            ),
            reverse_power_dbm=(
                result.reverse_power_dbm if result is not None else None
            ),
            reverse_margin_db=(
                result.reverse_margin_db if result is not None else None
            ),
            energized=result.activated if result is not None else False,
            short_circuited=result is None,
        )

    def _decode_probability(self, result: LinkResult) -> float:
        """Map the reverse margin to a per-reply decode probability."""
        if not result.activated:
            return 0.0
        slope = self.params.decode_slope_db
        margin = result.reverse_margin_db
        # Logistic centred at 0 margin; slope in dB per e-fold.
        return 1.0 / (1.0 + math.exp(-margin / slope))

    # -- the pass loop ----------------------------------------------------

    def run_pass(
        self,
        carriers: Sequence[CarrierGroup],
        seeds: SeedSequence,
        trial: int,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> PassResult:
        """Simulate one complete pass (one physical repetition).

        Parameters
        ----------
        carriers:
            Everything moving through the portal together.
        seeds:
            Root seed container; all randomness below derives from it.
        trial:
            Repetition index; distinct trials get independent shadowing
            and fading but share the deterministic geometry.
        fault_plan:
            Optional component-fault schedule
            (:class:`~repro.faults.plan.FaultPlan`). Physical faults are
            honoured here — a crashed or hung reader runs no inventory
            rounds, a silent antenna port reads nothing, a detuned port
            reads weaker, interference bursts raise every receive floor
            — and the resulting :class:`PassResult` carries a coverage
            report of what the infrastructure actually watched.
            Transport-level faults (poll drops, XML corruption) live at
            the wire layer instead; see
            :class:`~repro.faults.injectors.FaultyTransport`.
        """
        all_tags: List[Tuple[CarrierGroup, Tag]] = [
            (carrier, tag) for carrier in carriers for tag in carrier.tags
        ]
        if not all_tags:
            raise ValueError("no tags in any carrier group")
        epc_index: Dict[str, Tuple[CarrierGroup, Tag]] = {}
        for carrier, tag in all_tags:
            if tag.epc in epc_index:
                raise ValueError(f"duplicate EPC in pass: {tag.epc}")
            epc_index[tag.epc] = (carrier, tag)
        population = list(epc_index.keys())
        duration = max(c.motion.duration_s for c in carriers)

        rec: Optional[PassRecording] = None
        if self.recorder is not None and self.recorder.enabled:
            rec = self.recorder.begin_pass(trial)
            if self.recorder.capture_rng:
                # Same derivations, same seeds — just logged. The traced
                # wrapper never perturbs a draw.
                seeds = TracingSeedSequence(seeds.root_seed, rec)

        # Static per-tag coupling and mount-detuning penalties.
        coupling_db: Dict[str, float] = {
            tag.epc: self._coupling_db(carriers, carrier, tag)
            for carrier, tag in all_tags
        }
        detuning_db: Dict[str, float] = {
            tag.epc: tag.detuning_db() for _, tag in all_tags
        }
        # Per-trial static fade per (tag, antenna) link: environment
        # shadowing (independent per antenna — different sight lines
        # through the fixed environment) plus carrier-local clutter,
        # which is a property of how the tag sits among its co-moving
        # scatterers and is therefore COMMON to every antenna. The
        # shared component is why antenna-level redundancy underperforms
        # the independence model (paper Table 3: measured 86% vs
        # calculated 96%) while tag-level redundancy matches it.
        clutter: Dict[str, float] = {}
        for carrier, tag in all_tags:
            if carrier.clutter_sigma_db > 0.0:
                stream = seeds.trial_stream(f"clutter:{tag.epc}", trial)
                clutter[tag.epc] = stream.gauss(0.0, carrier.clutter_sigma_db)
            else:
                clutter[tag.epc] = 0.0
        shadowing: Dict[Tuple[str, str], float] = {}
        for antenna in self.portal.all_antennas:
            for carrier, tag in all_tags:
                stream = seeds.trial_stream(
                    f"shadow:{tag.epc}:{antenna.antenna_id}", trial
                )
                shadowing[(tag.epc, antenna.antenna_id)] = (
                    self.env.channel.shadowing.sample_db(stream)
                    + clutter[tag.epc]
                )

        trace = ReadTrace()
        total_rounds = 0
        interference_rng = seeds.trial_stream("interference", trial)
        cache = PassLinkCache() if self.use_link_cache else None

        # Each reader runs its own inventory timeline; simultaneous
        # readers interfere but do not share airtime. Traces merge at
        # the end (the back-end sees the union).
        reader_traces: List[List[TagReadEvent]] = []
        for reader in self.portal.readers:
            events, rounds = self._run_reader_timeline(
                reader,
                carriers,
                epc_index,
                population,
                coupling_db,
                detuning_db,
                shadowing,
                seeds,
                trial,
                duration,
                interference_rng,
                fault_plan,
                cache,
                rec,
            )
            reader_traces.append(events)
            total_rounds += rounds
        self._last_cache_stats = cache.stats() if cache is not None else None

        merged = sorted(
            (e for events in reader_traces for e in events), key=lambda e: e.time
        )
        for event in merged:
            trace.record(event)
        coverage = None
        if fault_plan is not None and not fault_plan.is_empty:
            coverage = fault_plan.coverage_report(
                [
                    (r.reader_id, a.antenna_id)
                    for r in self.portal.readers
                    for a in r.antennas
                ],
                duration,
            )
        observation = None
        if rec is not None:
            observation = rec.finalize(
                population=tuple(population),
                read_epcs=trace.epcs_seen(),
                first_read_times={
                    epc: trace.first_read_time(epc) for epc in trace.epcs_seen()
                },
                read_counts=trace.read_counts(),
                headroom_db=MAX_FADING_HEADROOM_DB,
                had_fault_plan=fault_plan is not None and not fault_plan.is_empty,
            )
        return PassResult(
            trace=trace,
            duration_s=duration,
            rounds=total_rounds,
            coverage=coverage,
            obs=observation,
        )

    def _run_reader_timeline(
        self,
        reader: ReaderAssignment,
        carriers: Sequence[CarrierGroup],
        epc_index: Dict[str, Tuple[CarrierGroup, Tag]],
        population: List[str],
        coupling_db: Dict[str, float],
        detuning_db: Dict[str, float],
        shadowing: Dict[Tuple[str, str], float],
        seeds: SeedSequence,
        trial: int,
        duration: float,
        interference_rng,
        fault_plan: Optional["FaultPlan"] = None,
        cache: Optional[PassLinkCache] = None,
        rec: Optional[PassRecording] = None,
    ) -> Tuple[List[TagReadEvent], int]:
        """One reader's full pass: TDMA over its antennas, round after round."""
        protocol_rng = seeds.trial_stream(f"protocol:{reader.reader_id}", trial)
        session = InventorySession()
        q_algo = QAlgorithm(
            q_initial=self.params.q_initial,
            q_min=self.params.q_min,
            q_max=self.params.q_max,
        )
        events: List[TagReadEvent] = []
        rounds = 0
        t = 0.0
        antennas = tuple(reader.antennas)
        other_radios = self._other_radios(reader)
        restarts = (
            [] if fault_plan is None
            else [c.down_until for c in fault_plan.crash_restarts(reader.reader_id)]
        )
        restart_cursor = 0
        # RF-mux takeover windows: [start + detection delay, end) slices
        # of another reader's outage during which its orphaned antennas
        # are rerouted to this reader.
        owner_of_antenna = {
            a.antenna_id: r.reader_id
            for r in self.portal.readers
            for a in r.antennas
        }
        takeovers: List[Tuple[AntennaInstallation, float, float]] = []
        if fault_plan is not None and reader.backup_antennas:
            delay = self.params.mux_takeover_delay_s
            for backup in reader.backup_antennas:
                owner = owner_of_antenna[backup.antenna_id]
                for start, end in fault_plan.reader_outages(owner):
                    if start + delay < end:
                        takeovers.append((backup, start + delay, end))

        # Takeover windows open and close a handful of times per pass at
        # most, so the active-antenna tuple is rebuilt only when the
        # liveness mask changes instead of being re-allocated per dwell.
        takeover_mask: Optional[Tuple[bool, ...]] = None
        active: Tuple[AntennaInstallation, ...] = antennas

        while t < duration:
            # A power-cycled reader comes back with a fresh inventory
            # session: its carrier dropped, so the tags' S0 flags (and,
            # over a seconds-long reboot, S1 persistence) lapse, and
            # previously read tags answer again.
            while restart_cursor < len(restarts) and t >= restarts[restart_cursor]:
                session.reset()
                restart_cursor += 1
            if fault_plan is not None and fault_plan.reader_down(
                reader.reader_id, t
            ):
                # Crashed or hung: no inventory, no airtime, no reads.
                if rec is not None:
                    rec.masked_dwell(t, reader.reader_id, None, "reader_down")
                t += self.params.tdma_slot_s
                continue
            if takeovers:
                mask = tuple(start <= t < end for (_, start, end) in takeovers)
                if mask != takeover_mask:
                    takeover_mask = mask
                    inherited = tuple(
                        a for (a, _, _), live in zip(takeovers, mask) if live
                    )
                    active = antennas + inherited if inherited else antennas
            antenna = active[
                int(t / self.params.tdma_slot_s) % len(active)
            ]
            fault_loss_db = 0.0
            if fault_plan is not None:
                silent, fault_loss_db = fault_plan.antenna_state(
                    reader.reader_id, antenna.antenna_id, t
                )
                if silent:
                    # Cable cut: the dwell happens but nothing radiates.
                    if rec is not None:
                        rec.masked_dwell(
                            t,
                            reader.reader_id,
                            antenna.antenna_id,
                            "antenna_silent",
                        )
                    t += self.params.tdma_slot_s
                    continue
            # A crashed neighbour radiates nothing: drop it from the
            # aggressor list for dwells inside its outage.
            live_radios = other_radios
            if fault_plan is not None and other_radios:
                live_radios = [
                    radio
                    for radio in other_radios
                    if not fault_plan.reader_down(radio.reader_id, t)
                ]
            interference = self._interference_for(
                reader, antenna, live_radios, interference_rng
            )
            if fault_plan is not None:
                burst = fault_plan.interference_dbm_at(t)
                if burst is not None:
                    interference = (
                        burst
                        if interference is None
                        else sum_powers_dbm(interference, burst)
                    )
            last_result: Dict[str, LinkResult] = {}

            def channel(epc: str) -> TagChannel:
                carrier, tag = epc_index[epc]
                if cache is not None:
                    result = self._evaluate_tag_cached(
                        cache,
                        carriers,
                        carrier,
                        tag,
                        antenna,
                        reader,
                        t,
                        shadowing[(epc, antenna.antenna_id)],
                        detuning_db[epc],
                        coupling_db[epc],
                        interference,
                        fault_loss_db,
                        seeds,
                        trial,
                        rec,
                    )
                    if result is None:
                        # Forward link provably cannot close this round;
                        # an un-energized tag never replies, so nothing
                        # downstream consumes a LinkResult for it.
                        return TagChannel(energized=False, reply_decode_p=0.0)
                    last_result[epc] = result
                    return TagChannel(
                        energized=result.activated,
                        reply_decode_p=self._decode_probability(result),
                    )
                fading = self.env.channel.fading
                # Evaluate obstruction first (it degrades the K-factor),
                # then draw fading from the degraded channel. The draw is
                # deterministic per (trial, link, coherence cell): the
                # channel of a static geometry does not re-roll itself —
                # only motion across ~lambda/2 decorrelates it.
                tag_pos = carrier.tag_world_position(tag, t)
                obstruction_db, _ = self._obstruction_db(
                    carriers, antenna.position, tag_pos, t
                )
                obstructed_k_penalty = (
                    obstruction_db * self.params.k_penalty_per_obstruction
                )
                cell = self.params.fading_coherence_m
                bin_key = (
                    int(tag_pos.x // cell),
                    int(tag_pos.y // cell),
                    int(tag_pos.z // cell),
                )
                # Keyed by (radio, antenna): two radios driving the
                # same port see decorrelated small-scale fading, since
                # they hop on different frequency channels.
                fading_rng = seeds.trial_stream(
                    f"fading:{reader.reader_id}:{antenna.antenna_id}:{epc}:"
                    f"{bin_key[0]}:{bin_key[1]}:{bin_key[2]}",
                    trial,
                )
                fading_gain = fading.degraded(
                    obstructed_k_penalty
                ).sample_power_gain(fading_rng)
                result = self._evaluate_tag(
                    carriers,
                    carrier,
                    tag,
                    antenna,
                    reader,
                    t,
                    shadowing[(epc, antenna.antenna_id)],
                    fading_gain,
                    interference,
                    coupling_db[epc],
                    fault_loss_db,
                )
                last_result[epc] = result
                if rec is not None:
                    # Recompute the per-term breakdown for the waterfall
                    # record (recording-only work; the uncached hot path
                    # composed the budget without exposing its terms).
                    geometry = LinkGeometry(
                        antenna_position=antenna.position,
                        antenna_boresight=antenna.boresight,
                        tag_position=tag_pos,
                        tag_axis=tag.world_dipole_axis(),
                    )
                    tag_gain_override = None
                    if tag.design is not None:
                        tag_gain_override = tag.pattern_gain_dbi(
                            -geometry.direction
                        )
                    terms = compute_link_terms(
                        self.env, geometry, tag_gain_override
                    )
                    fading_db = linear_to_db(max(fading_gain, 1e-300))
                    _, reflector = self._obstruction_db(
                        carriers, antenna.position, tag_pos, t
                    )
                    gain_bonus = (
                        self.params.reflection_gain_db if reflector else 0.0
                    )
                    rec.link(
                        self._link_record(
                            terms,
                            tag,
                            antenna,
                            reader,
                            t,
                            trial,
                            gain_bonus,
                            shadowing[(epc, antenna.antenna_id)],
                            obstruction_db,
                            detuning_db[epc],
                            coupling_db[epc],
                            fault_loss_db,
                            interference,
                            fading_db=fading_db,
                            result=result,
                        ),
                        no_fade_margin_db=result.forward_margin_db - fading_db,
                    )
                return TagChannel(
                    energized=result.activated,
                    reply_decode_p=self._decode_probability(result),
                )

            slot_observer = None
            if rec is not None:
                def slot_observer(
                    outcome,
                    responders,
                    _rec=rec,
                    _reader_id=reader.reader_id,
                    _antenna_id=antenna.antenna_id,
                ):
                    _rec.slot(
                        outcome.time,
                        _reader_id,
                        _antenna_id,
                        outcome.slot_index,
                        responders,
                        outcome.kind,
                        outcome.epc,
                    )

            round_result = run_inventory_round(
                population,
                channel,
                protocol_rng,
                q_algo,
                session=session,
                timing=self.timing,
                start_time=t,
                time_budget_s=duration - t,
                capture_probability=self.params.capture_probability,
                slot_observer=slot_observer,
            )
            rounds += 1
            if rec is not None:
                rec.round_complete()
            for epc in round_result.read_epcs:
                result = last_result.get(epc)
                rssi = result.reverse_power_dbm if result else -99.0
                events.append(
                    TagReadEvent(
                        time=round_result.read_times[epc],
                        epc=epc,
                        reader_id=reader.reader_id,
                        antenna_id=antenna.antenna_id,
                        rssi_dbm=rssi,
                    )
                )
            # Advance by the airtime the round consumed (at least one
            # Query even if the field was empty).
            t += max(round_result.duration_s, self.timing.query_s)
        return events, rounds

    def _other_radios(self, reader: ReaderAssignment) -> List[ReaderRadio]:
        """Radios of every *other* reader in the portal (the aggressors)."""
        radios = []
        for other in self.portal.readers:
            if other.reader_id == reader.reader_id:
                continue
            for antenna in other.antennas:
                radios.append(
                    ReaderRadio(
                        reader_id=other.reader_id,
                        position=antenna.position,
                        tx_power_dbm=other.tx_power_dbm,
                        antenna_gain_dbi=self.env.reader_antenna.boresight_gain_dbi,
                        dense_reader_mode=other.dense_reader_mode,
                    )
                )
        return radios

    def _interference_for(
        self,
        reader: ReaderAssignment,
        antenna: AntennaInstallation,
        aggressors: List[ReaderRadio],
        rng,
    ) -> Optional[float]:
        """In-band interference at this reader's receiver for one dwell."""
        if not aggressors:
            return None
        victim = ReaderRadio(
            reader_id=reader.reader_id,
            position=antenna.position,
            tx_power_dbm=reader.tx_power_dbm,
            antenna_gain_dbi=self.env.reader_antenna.boresight_gain_dbi,
            dense_reader_mode=reader.dense_reader_mode,
        )
        co_channel = rng.bernoulli(self.params.co_channel_probability)
        return interference_at_receiver_dbm(victim, aggressors, co_channel)
