"""Tagged-materials study (the paper's reference [12]).

The paper cites Ramakrishnan & Deavours' performance benchmark, which
measured "read reliability for different tagged materials on a conveyer
belt". Section 2.1 summarises the physics: "Materials such as metals
and liquids not only block the signal when the material is placed
between the antenna and the tag, but may act as a grounding plate if
the tag is too close to the material."

This scenario reruns the paper's box-cart workload with the box
*contents* swept over materials — empty, cardboard-only, metal, liquid
— so the material effect is measured with everything else held fixed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.experiment import DEFAULT_SEED, run_trials, stable_hash
from ...core.parallel import PassTrialTask
from ...core.reliability import ReliabilityEstimate
from ...protocol.epc import EpcFactory
from ...rf.materials import CARDBOARD, LIQUID, METAL, Material
from ..motion import LinearPass
from ..objects import BoxContent, BoxFace, cart_of_boxes
from ..portal import single_antenna_portal
from ..simulation import CarrierGroup, Occluder, PortalPassSimulator

#: Content configurations swept by the study: name -> (material, radius).
MATERIAL_CASES: Dict[str, Optional[Tuple[Material, float]]] = {
    "empty": None,
    "cardboard": (CARDBOARD, 0.125),
    "liquid": (LIQUID, 0.125),
    "metal": (METAL, 0.125),
}

PAPER_REPETITIONS = 10


def build_material_cart(
    case: str,
    face: BoxFace = BoxFace.SIDE_CLOSER,
    clutter_sigma_db: float = 5.0,
) -> Tuple[CarrierGroup, List[str]]:
    """The 12-box cart with every box filled per ``case``.

    Tags go on the antenna-facing side so the *content* effect (not
    geometry) dominates; returns the carrier and its tag EPCs.
    """
    if case not in MATERIAL_CASES:
        known = ", ".join(sorted(MATERIAL_CASES))
        raise ValueError(f"unknown material case {case!r}; known: {known}")
    boxes = cart_of_boxes()
    spec = MATERIAL_CASES[case]
    factory = EpcFactory()
    occluders: List[Occluder] = []
    for box in boxes:
        if spec is None:
            box.content = None
        else:
            material, radius = spec
            box.content = BoxContent(material=material, radius_m=radius)
        box.attach_tag(factory.next_epc().to_hex(), face)
        centre = box.content_centre()
        if centre is not None and box.content is not None:
            occluders.append(
                Occluder(
                    centre=centre,
                    radius_m=box.content.radius_m,
                    material=box.content.material,
                )
            )
    carrier = CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=2.5, height_m=0.0
        ),
        tags=[tag for box in boxes for tag in box.all_tags()],
        occluders=occluders,
        clutter_sigma_db=clutter_sigma_db,
    )
    return carrier, [t.epc for t in carrier.tags]


@dataclass(frozen=True)
class MaterialStudyResult:
    """Per-material read reliability."""

    rates: Dict[str, ReliabilityEstimate]

    def ordered(self) -> List[Tuple[str, float]]:
        """(case, rate) pairs, most readable first."""
        return sorted(
            ((name, est.rate) for name, est in self.rates.items()),
            key=lambda pair: pair[1],
            reverse=True,
        )


def run_materials_study(
    cases: Sequence[str] = tuple(MATERIAL_CASES),
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> MaterialStudyResult:
    """Measure per-material tag read reliability on the conveyor pass."""
    from ...core.calibration import PaperSetup

    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=single_antenna_portal(), env=setup.env, params=setup.params
    )
    rates: Dict[str, ReliabilityEstimate] = {}
    for case in cases:
        carrier, epcs = build_material_cart(case)
        trials = run_trials(
            f"materials:{case}",
            PassTrialTask(simulator=simulator, carriers=(carrier,)),
            repetitions,
            seed=seed ^ stable_hash(f"materials:{case}"),
            workers=workers,
        )
        successes = sum(o.tags_read(epcs) for o in trials.outcomes)
        rates[case] = ReliabilityEstimate(
            successes=successes, trials=len(epcs) * repetitions
        )
    return MaterialStudyResult(rates=rates)
