"""Scenario builders reproducing each of the paper's experiments."""

from .human_tracking import (
    PLACEMENT_SETS,
    TABLE4_CASES,
    TABLE5_CASES,
    HumanPlacementResult,
    HumanRedundancyCase,
    HumanRedundancyOutcome,
    build_walk,
    run_human_redundancy_experiment,
    run_table2_experiment,
)
from .object_tracking import (
    TABLE1_LOCATIONS,
    TABLE3_CASES,
    ObjectTrackingResult,
    RedundancyCase,
    RedundancyOutcome,
    build_box_cart,
    run_object_redundancy_experiment,
    run_table1_experiment,
)
from .orientation_spacing import (
    PAPER_SPACINGS_M,
    OrientationSpacingPoint,
    build_tag_row,
    minimum_safe_spacing,
    run_orientation_spacing_experiment,
)
from .materials_study import (
    MATERIAL_CASES,
    MaterialStudyResult,
    build_material_cart,
    run_materials_study,
)
from .fault_injection import (
    ConfigOutcome,
    FaultInjectionResult,
    SupervisedTrialOutcome,
    primary_crash_plan,
    run_fault_injection_experiment,
    run_fault_rate_sweep,
    run_supervised_pass,
)
from .reader_redundancy import (
    ReaderRedundancyResult,
    run_reader_redundancy_experiment,
)
from .read_range import (
    PAPER_DISTANCES_M,
    ReadRangePoint,
    build_tag_plane,
    run_read_range_experiment,
)

__all__ = [
    "MATERIAL_CASES",
    "MaterialStudyResult",
    "build_material_cart",
    "run_materials_study",
    "ReaderRedundancyResult",
    "run_reader_redundancy_experiment",
    "ConfigOutcome",
    "FaultInjectionResult",
    "SupervisedTrialOutcome",
    "primary_crash_plan",
    "run_fault_injection_experiment",
    "run_fault_rate_sweep",
    "run_supervised_pass",
    "PLACEMENT_SETS",
    "TABLE4_CASES",
    "TABLE5_CASES",
    "HumanPlacementResult",
    "HumanRedundancyCase",
    "HumanRedundancyOutcome",
    "build_walk",
    "run_human_redundancy_experiment",
    "run_table2_experiment",
    "TABLE1_LOCATIONS",
    "TABLE3_CASES",
    "ObjectTrackingResult",
    "RedundancyCase",
    "RedundancyOutcome",
    "build_box_cart",
    "run_object_redundancy_experiment",
    "run_table1_experiment",
    "PAPER_SPACINGS_M",
    "OrientationSpacingPoint",
    "build_tag_row",
    "minimum_safe_spacing",
    "run_orientation_spacing_experiment",
    "PAPER_DISTANCES_M",
    "ReadRangePoint",
    "build_tag_plane",
    "run_read_range_experiment",
]
