"""Section 4 scenario: reader-level redundancy (and its failure).

The paper: "While one might expect to see similar improvements for
multiple readers per portal, our measurement clearly showed the
opposite: read reliability was severely reduced ... The reason is
reader-to-reader RF interference. While Gen 2 has standard measures to
combat this problem, called dense-reader mode, it is optional for
readers. Our readers did not support dense-reader mode."

This scenario measures one-subject tracking under three portal builds:
one reader (baseline), two readers without DRM (the paper's failing
configuration), and two readers with DRM (the fix the paper's hardware
lacked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ...core.experiment import DEFAULT_SEED, run_trials, stable_hash
from ...core.parallel import PassTrialTask
from ...core.reliability import ReliabilityEstimate
from ...obs.recorder import Recorder
from ..humans import HumanTagPlacement
from ..portal import Portal, dual_reader_portal, single_antenna_portal
from ..simulation import PortalPassSimulator
from .human_tracking import build_walk

PAPER_REPETITIONS = 20


@dataclass(frozen=True)
class ReaderRedundancyResult:
    """Tracking reliability per portal build."""

    single_reader: ReliabilityEstimate
    dual_no_drm: ReliabilityEstimate
    dual_with_drm: ReliabilityEstimate

    @property
    def interference_penalty(self) -> float:
        """Reliability lost by adding a non-DRM reader."""
        return self.single_reader.rate - self.dual_no_drm.rate

    @property
    def drm_recovery(self) -> float:
        """Reliability recovered by enabling dense-reader mode."""
        return self.dual_with_drm.rate - self.dual_no_drm.rate


def _measure(
    portal: Portal,
    label: str,
    placement: str,
    repetitions: int,
    seed: int,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> ReliabilityEstimate:
    from ...core.calibration import PaperSetup

    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=portal, env=setup.env, params=setup.params,
        recorder=recorder,
    )
    carrier, humans = build_walk(1, [placement])
    epc = humans[0].tags[0].epc
    trials = run_trials(
        label,
        PassTrialTask(simulator=simulator, carriers=(carrier,)),
        repetitions,
        seed=seed ^ stable_hash(label),
        workers=workers,
    )
    if recorder is not None:
        recorder.absorb_trial_set(label, trials)
    return trials.success_estimate(lambda r: epc in r.read_epcs)


def run_reader_redundancy_experiment(
    placement: str = HumanTagPlacement.FRONT,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> ReaderRedundancyResult:
    """Measure the three portal builds on the same walking workload."""
    return ReaderRedundancyResult(
        single_reader=_measure(
            single_antenna_portal(), "reader-red:single", placement,
            repetitions, seed, workers=workers, recorder=recorder,
        ),
        dual_no_drm=_measure(
            dual_reader_portal(dense_reader_mode=False),
            "reader-red:dual-nodrm",
            placement,
            repetitions,
            seed,
            workers=workers,
            recorder=recorder,
        ),
        dual_with_drm=_measure(
            dual_reader_portal(dense_reader_mode=True),
            "reader-red:dual-drm",
            placement,
            repetitions,
            seed,
            workers=workers,
            recorder=recorder,
        ),
    )
