"""Figure 4 scenario: inter-tag distance x tag orientation.

The paper: 10 tags in parallel on a cardboard box, carted past a
single antenna at ~1 m/s and 1 m lane distance — "a situation where
items are carried by a conveyor belt through a gate". Five inter-tag
spacings (0.3, 4, 10, 20, 40 mm) crossed with the six Figure 3
orientations, at least 10 repetitions each.

Tags are stacked along their inlay normal (like book covers on a
shelf — the paper's own motivating image), so parallel neighbours
couple fully at small spacings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.experiment import DEFAULT_SEED, run_trials
from ...core.parallel import PassTrialTask
from ...core.reliability import CountDistribution
from ...protocol.epc import EpcFactory
from ...rf.geometry import Vec3
from ..motion import LinearPass
from ..portal import single_antenna_portal
from ..simulation import CarrierGroup, PortalPassSimulator
from ..tags import ALL_ORIENTATIONS, Tag, TagOrientation

PAPER_SPACINGS_M = (0.0003, 0.004, 0.010, 0.020, 0.040)
PAPER_TAG_COUNT = 10
PAPER_REPETITIONS = 10

#: Height of the tag row on the cart.
TAG_HEIGHT_M = 1.0


def build_tag_row(
    spacing_m: float,
    orientation: TagOrientation,
    tag_count: int = PAPER_TAG_COUNT,
) -> CarrierGroup:
    """Ten parallel tags stacked along their normal, riding the cart."""
    if spacing_m < 0.0:
        raise ValueError(f"spacing must be non-negative, got {spacing_m!r}")
    if tag_count < 1:
        raise ValueError(f"tag count must be >= 1, got {tag_count!r}")
    factory = EpcFactory()
    stack_axis = orientation.normal
    tags: List[Tag] = []
    span = (tag_count - 1) * spacing_m
    for i in range(tag_count):
        offset = stack_axis * (i * spacing_m - span / 2.0)
        tags.append(
            Tag(
                epc=factory.next_epc().to_hex(),
                local_position=Vec3(
                    offset.x, TAG_HEIGHT_M + offset.y, offset.z
                ),
                orientation=orientation,
                label=f"row-{i}",
            )
        )
    return CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=2.0, height_m=0.0
        ),
        tags=tags,
    )


@dataclass
class OrientationSpacingPoint:
    """Tags-read distribution for one (orientation, spacing) cell."""

    orientation: TagOrientation
    spacing_m: float
    distribution: CountDistribution

    @property
    def mean_tags_read(self) -> float:
        return self.distribution.mean


def run_orientation_spacing_experiment(
    spacings_m: Sequence[float] = PAPER_SPACINGS_M,
    orientations: Sequence[TagOrientation] = ALL_ORIENTATIONS,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    simulator: PortalPassSimulator = None,
    workers: Optional[int] = None,
) -> Dict[Tuple[int, float], OrientationSpacingPoint]:
    """Reproduce Figure 4: the full orientation x spacing grid.

    Returns a dict keyed by (orientation case number, spacing).
    """
    from ...core.calibration import PaperSetup

    setup = PaperSetup()
    sim = simulator or PortalPassSimulator(
        portal=single_antenna_portal(tx_power_dbm=setup.tx_power_dbm),
        env=setup.env,
        params=setup.params,
    )
    results: Dict[Tuple[int, float], OrientationSpacingPoint] = {}
    for orientation in orientations:
        for spacing in spacings_m:
            carrier = build_tag_row(spacing, orientation)
            epcs = [t.epc for t in carrier.tags]
            trial_set = run_trials(
                f"fig4:case{orientation.case_number}@{spacing * 1000:.1f}mm",
                PassTrialTask(simulator=sim, carriers=(carrier,)),
                repetitions,
                seed=seed
                ^ (orientation.case_number * 7919)
                ^ int(spacing * 1e6),
                workers=workers,
            )
            distribution = trial_set.count_distribution(
                lambda r: r.tags_read(epcs), total=len(epcs)
            )
            results[(orientation.case_number, spacing)] = OrientationSpacingPoint(
                orientation, spacing, distribution
            )
    return results


def minimum_safe_spacing(
    results: Dict[Tuple[int, float], OrientationSpacingPoint],
    case_number: int,
    threshold_fraction: float = 0.9,
) -> float:
    """Smallest tested spacing whose mean read fraction clears a threshold.

    The paper's headline: "tags require at least 20 to 40 mm spacing
    between them to operate in a reliable fashion". Returns ``inf``
    when no tested spacing clears the bar (the perpendicular cases
    never reach 90% regardless of spacing).
    """
    candidates = sorted(
        (point.spacing_m, point.distribution.mean_fraction)
        for (case, _), point in results.items()
        if case == case_number
    )
    if not candidates:
        raise ValueError(f"no results for orientation case {case_number}")
    # Reliability must be judged relative to this orientation's own
    # wide-spacing plateau, otherwise pattern loss masks coupling.
    plateau = candidates[-1][1]
    if plateau <= 0.0:
        return float("inf")
    for spacing, fraction in candidates:
        if fraction >= threshold_fraction * plateau:
            return spacing
    return float("inf")
