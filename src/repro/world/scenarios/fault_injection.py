"""Fault-injection scenario: reader redundancy under *component* faults.

The paper's Section 4 measures reader-level redundancy against RF
read-misses; a deployed portal also loses readers outright — a crash
mid-pass, a wedge, a power cycle. This scenario reruns the Section 4
workload (one walking subject, front tag) with a deterministic
:class:`~repro.faults.plan.FaultPlan` that kills the primary reader
mid-pass, and measures how the supervised stack responds:

* a **single supervised reader** collapses — everything after the
  crash is unobservable;
* a **two-reader failover group** (dense-reader mode, so the standby
  does not jam the primary) recovers to the fault-free two-reader
  baseline: the standby's independent session covers the outage, the
  supervisor's health monitor makes the failure *observable*, and the
  coverage annotation keeps the miss from being booked as "object
  absent".

Everything — fault times, retry outcomes, RF draws — derives from the
root seed, so runs replay bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...core.experiment import DEFAULT_SEED, run_trials, stable_hash
from ...core.reliability import ReliabilityEstimate
from ...faults import FaultPlan, FaultyTransport, ReaderCrash
from ...obs.metrics import MetricsRegistry
from ...obs.recorder import PassObservation, Recorder
from ...obs.records import SupervisorRecord
from ...reader.backend import ObjectRegistry, TrackedObject, TrackingBackend
from ...reader.supervisor import (
    HealthTransition,
    Promotion,
    ReaderFailoverGroup,
    RetryPolicy,
    SupervisedReader,
)
from ...reader.wire import PolledInterface
from ...sim.rng import SeedSequence
from ..humans import HumanTagPlacement
from ..portal import Portal, failover_portal, single_antenna_portal
from ..simulation import CarrierGroup, PortalPassSimulator
from .human_tracking import build_walk

PAPER_REPETITIONS = 20

#: When the primary dies, as a fraction of the pass. 50 ms into the 4 s
#: walk is the worst realistic moment for a lone reader: the portal has
#: already seen the tag (reads start the instant the subject enters the
#: arch), but the application has not yet polled, so the crash's buffer
#: wipe destroys every read the reader was holding — and the outage
#: swallows the rest of the entry read window.
DEFAULT_CRASH_FRACTION = 0.0125

#: How long the watchdog takes to power-cycle a crashed reader. The
#: AR400-class readers the paper used take longer to reboot than a 4 s
#: portal pass lasts: the supervisor *observes* the recovery (down ->
#: healthy), but the subject is already gone. Pass ``None`` through the
#: plan factory for a reader that never comes back.
DEFAULT_WATCHDOG_RESTART_S = 4.0

#: Application-level poll cadence. The paper found tracking independent
#: of polling speed for healthy readers; under faults the cadence sets
#: how fast the supervisor notices trouble.
POLL_INTERVAL_S = 0.25

#: A plan factory maps (seeds, trial, pass duration) to that trial's
#: fault schedule (None = fault-free).
PlanFactory = Callable[[SeedSequence, int, float], Optional[FaultPlan]]


@dataclass(frozen=True)
class NoFaultPlanFactory:
    """Picklable plan factory for the fault-free baseline cells."""

    def __call__(
        self, seeds: SeedSequence, trial: int, duration: float
    ) -> Optional[FaultPlan]:
        return None


@dataclass(frozen=True)
class PrimaryCrashPlanFactory:
    """Picklable plan factory: the canonical primary crash every trial."""

    crash_fraction: float = DEFAULT_CRASH_FRACTION
    restart_after_s: Optional[float] = DEFAULT_WATCHDOG_RESTART_S
    reader_id: str = "reader-0"

    def __call__(
        self, seeds: SeedSequence, trial: int, duration: float
    ) -> Optional[FaultPlan]:
        return primary_crash_plan(
            duration,
            self.crash_fraction,
            self.restart_after_s,
            reader_id=self.reader_id,
        )


@dataclass(frozen=True)
class SampledCrashPlanFactory:
    """Picklable plan factory: each reader crashes with probability ``rate``.

    Crash decisions come from a named per-trial stream, so a sweep
    replays bit-for-bit from its seed regardless of worker count.
    """

    rate: float
    crash_fraction: float = DEFAULT_CRASH_FRACTION
    restart_after_s: Optional[float] = DEFAULT_WATCHDOG_RESTART_S
    reader_ids: Tuple[str, ...] = ("reader-0", "reader-1")

    def __call__(
        self, seeds: SeedSequence, trial: int, duration: float
    ) -> Optional[FaultPlan]:
        if self.rate == 0.0:
            return None
        stream = seeds.trial_stream(f"faultplan:rate={self.rate!r}", trial)
        crashes = []
        for reader_id in self.reader_ids:
            if stream.bernoulli(self.rate):
                crashes.extend(
                    primary_crash_plan(
                        duration,
                        self.crash_fraction,
                        self.restart_after_s,
                        reader_id=reader_id,
                    ).crashes
                )
        if not crashes:
            return None
        return FaultPlan(crashes=tuple(crashes))


@dataclass(frozen=True)
class SupervisedTrialOutcome:
    """What one supervised pass reported — decision plus observability."""

    detected: bool
    degraded: bool
    verdict: str
    coverage: float
    active_reader: str
    transitions: Tuple[HealthTransition, ...]
    promotions: Tuple[Promotion, ...]
    #: Recorded pass observation (with the supervision layer's health
    #: and failover events folded in) when the simulator carried a
    #: :class:`~repro.obs.Recorder`; ``None`` otherwise.
    obs: Optional[PassObservation] = None


@dataclass(frozen=True)
class ConfigOutcome:
    """Aggregate over repetitions of one portal/fault configuration."""

    label: str
    estimate: ReliabilityEstimate
    outcomes: Tuple[SupervisedTrialOutcome, ...]

    @property
    def degraded_trials(self) -> int:
        return sum(1 for o in self.outcomes if o.degraded)

    @property
    def promoted_trials(self) -> int:
        return sum(1 for o in self.outcomes if o.promotions)

    @property
    def misreported_blind_trials(self) -> int:
        """Trials where a blind miss was booked as a confident absence.

        The whole point of degraded-mode tracking is that this is zero:
        a trial that was not detected *and* ran under reduced coverage
        must carry verdict ``"unobserved"``, never ``"absent"``.
        """
        return sum(
            1
            for o in self.outcomes
            if not o.detected and o.degraded and o.verdict == "absent"
        )


@dataclass(frozen=True)
class FaultInjectionResult:
    """The four cells of the crash experiment."""

    single_fault_free: ConfigOutcome
    single_crash: ConfigOutcome
    failover_fault_free: ConfigOutcome
    failover_crash: ConfigOutcome

    @property
    def single_collapse(self) -> float:
        """Reliability lost by the unsupervised-redundancy build."""
        return (
            self.single_fault_free.estimate.rate
            - self.single_crash.estimate.rate
        )

    @property
    def failover_recovery_gap(self) -> float:
        """How far the crashed failover group sits below its baseline."""
        return (
            self.failover_fault_free.estimate.rate
            - self.failover_crash.estimate.rate
        )


def primary_crash_plan(
    duration_s: float,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    restart_after_s: Optional[float] = DEFAULT_WATCHDOG_RESTART_S,
    reader_id: str = "reader-0",
) -> FaultPlan:
    """The canonical fault: the primary dies mid-pass; a watchdog reboots it.

    The crash wipes the reader's buffer (reads the application had not
    yet polled are gone) and the outage covers the rest of the read
    window. ``restart_after_s=None`` keeps the reader down for the
    remainder of the pass; a restart brings it back with a fresh
    inventory session (and an empty buffer).
    """
    if not 0.0 < crash_fraction < 1.0:
        raise ValueError(
            f"crash fraction must be in (0, 1), got {crash_fraction!r}"
        )
    at = crash_fraction * duration_s
    restart = None if restart_after_s is None else at + restart_after_s
    return FaultPlan(crashes=(ReaderCrash(reader_id, at, restart),))


def run_supervised_pass(
    simulator: PortalPassSimulator,
    portal: Portal,
    carriers: Sequence,
    registry: ObjectRegistry,
    object_id: str,
    seeds: SeedSequence,
    trial: int,
    plan: Optional[FaultPlan],
    policy: Optional[RetryPolicy] = None,
    poll_interval_s: float = POLL_INTERVAL_S,
) -> SupervisedTrialOutcome:
    """One pass driven end to end through the supervised reader stack.

    The pass simulator produces each reader's (possibly fault-thinned)
    trace; per-reader buffers get wrapped in fault-injecting transports;
    a :class:`ReaderFailoverGroup` polls them on the application cadence;
    and the back-end renders a coverage-aware tracking decision.
    """
    result = simulator.run_pass(carriers, seeds, trial, fault_plan=plan)

    # When the pass was recorded, fold the supervision layer's
    # lifecycle events into the same observation via the supervisor's
    # observer callbacks — never by consuming RNG or touching state.
    sup_records: List[SupervisorRecord] = []
    on_transition = None
    on_promotion = None
    if result.obs is not None:

        def on_transition(tr: HealthTransition) -> None:
            sup_records.append(
                SupervisorRecord(
                    time=tr.time,
                    trial=trial,
                    reader_id=tr.reader_id,
                    kind="health",
                    old=tr.old.value,
                    new=tr.new.value,
                    reason=tr.reason,
                )
            )

        def on_promotion(promotion: Promotion) -> None:
            sup_records.append(
                SupervisorRecord(
                    time=promotion.time,
                    trial=trial,
                    reader_id=promotion.to_reader,
                    kind="promotion",
                    old=promotion.from_reader,
                    new=promotion.to_reader,
                    reason="failover",
                )
            )

    readers: List[SupervisedReader] = []
    for assignment in portal.readers:
        interface = PolledInterface(
            [
                e
                for e in result.trace
                if e.reader_id == assignment.reader_id
            ]
        )
        transport = FaultyTransport(
            interface,
            assignment.reader_id,
            plan,
            rng=seeds.trial_stream(
                f"transport:{assignment.reader_id}", trial
            ),
        )
        readers.append(
            SupervisedReader(
                assignment.reader_id, transport, policy,
                on_transition=on_transition,
            )
        )
    group = ReaderFailoverGroup(readers, on_promotion=on_promotion)
    backend = TrackingBackend(registry)
    t = poll_interval_s
    # Poll through the pass, then once more to drain stragglers (and
    # give a restarted reader a final chance to answer).
    while t < result.duration_s + 2.0 * poll_interval_s:
        backend.ingest(group.poll(t))
        t += poll_interval_s
    decision = backend.decide(coverage=result.coverage)[object_id]

    observation = result.obs
    if observation is not None and sup_records:
        merged = MetricsRegistry.from_dict(observation.metrics)
        merged.counter("pass.supervisor_events").inc(len(sup_records))
        observation = replace(
            observation,
            supervisor_records=observation.supervisor_records
            + tuple(sup_records),
            metrics=merged.to_dict(),
        )

    return SupervisedTrialOutcome(
        detected=decision.detected,
        degraded=decision.degraded,
        verdict=decision.verdict,
        coverage=decision.coverage,
        active_reader=group.active_reader_id,
        transitions=tuple(group.transitions()),
        promotions=tuple(group.promotions),
        obs=observation,
    )


@dataclass(frozen=True)
class SupervisedPassTask:
    """Picklable trial callable: one pass through the supervised stack.

    The parallel-capable counterpart of the per-cell closure around
    :func:`run_supervised_pass` — every field is a plain dataclass (the
    plan factories above replace the original lambdas), so the whole
    cell ships to worker processes and fans out with bit-identical
    outcomes.
    """

    simulator: PortalPassSimulator
    portal: Portal
    carriers: Tuple[CarrierGroup, ...]
    registry: ObjectRegistry
    object_id: str
    plan_factory: PlanFactory
    pass_duration_s: float
    policy: Optional[RetryPolicy] = None
    poll_interval_s: float = POLL_INTERVAL_S

    def __call__(
        self, seeds: SeedSequence, trial: int
    ) -> SupervisedTrialOutcome:
        plan = self.plan_factory(seeds, trial, self.pass_duration_s)
        return run_supervised_pass(
            self.simulator,
            self.portal,
            list(self.carriers),
            self.registry,
            self.object_id,
            seeds,
            trial,
            plan,
            policy=self.policy,
            poll_interval_s=self.poll_interval_s,
        )


def _measure_config(
    portal: Portal,
    label: str,
    plan_factory: PlanFactory,
    placement: str,
    repetitions: int,
    seed: int,
    poll_interval_s: float = POLL_INTERVAL_S,
    stream_label: Optional[str] = None,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> ConfigOutcome:
    """Measure one (portal, fault plan) cell.

    ``stream_label`` names the RNG stream family; configurations that
    share it run *paired* trials — identical RF/protocol draws, so any
    outcome difference is caused by the fault plan, not by sampling a
    different batch of passes. The fault-free and faulted cells of each
    portal share their stream label for exactly this reason.
    """
    from ...core.calibration import PaperSetup

    setup = PaperSetup()
    simulator = PortalPassSimulator(
        portal=portal, env=setup.env, params=setup.params,
        recorder=recorder,
    )
    carrier, humans = build_walk(1, [placement])
    epc = humans[0].tags[0].epc
    registry = ObjectRegistry()
    registry.register(TrackedObject("subject-0", frozenset({epc})))
    duration = carrier.motion.duration_s
    task = SupervisedPassTask(
        simulator=simulator,
        portal=portal,
        carriers=(carrier,),
        registry=registry,
        object_id="subject-0",
        plan_factory=plan_factory,
        pass_duration_s=duration,
        poll_interval_s=poll_interval_s,
    )
    trials = run_trials(
        label,
        task,
        repetitions,
        seed=seed ^ stable_hash(stream_label or label),
        workers=workers,
    )
    if recorder is not None:
        recorder.absorb_trial_set(label, trials)
    return ConfigOutcome(
        label=label,
        estimate=trials.success_estimate(lambda o: o.detected),
        outcomes=tuple(trials.outcomes),
    )


def run_fault_injection_experiment(
    placement: str = HumanTagPlacement.FRONT,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    restart_after_s: Optional[float] = DEFAULT_WATCHDOG_RESTART_S,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> FaultInjectionResult:
    """Kill the primary mid-pass; compare one reader vs a failover pair.

    The pair is the hot-standby build (:func:`failover_portal`): the
    paper's dual-reader wiring with dense-reader mode on (the Section 4
    lesson: without it the standby jams the primary), each reader
    running its own Gen 2 session so the standby's inventory survives
    the primary's death.
    """
    no_faults: PlanFactory = NoFaultPlanFactory()
    crash: PlanFactory = PrimaryCrashPlanFactory(
        crash_fraction=crash_fraction, restart_after_s=restart_after_s
    )
    single = single_antenna_portal()
    pair = failover_portal()
    return FaultInjectionResult(
        single_fault_free=_measure_config(
            single, "faults:single-clean", no_faults, placement,
            repetitions, seed, stream_label="faults:single",
            workers=workers, recorder=recorder,
        ),
        single_crash=_measure_config(
            single, "faults:single-crash", crash, placement,
            repetitions, seed, stream_label="faults:single",
            workers=workers, recorder=recorder,
        ),
        failover_fault_free=_measure_config(
            pair, "faults:failover-clean", no_faults, placement,
            repetitions, seed, stream_label="faults:failover",
            workers=workers, recorder=recorder,
        ),
        failover_crash=_measure_config(
            pair, "faults:failover-crash", crash, placement,
            repetitions, seed, stream_label="faults:failover",
            workers=workers, recorder=recorder,
        ),
    )


def run_fault_rate_sweep(
    rates: Sequence[float] = (0.0, 0.25, 0.5, 0.75, 1.0),
    placement: str = HumanTagPlacement.FRONT,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    restart_after_s: Optional[float] = DEFAULT_WATCHDOG_RESTART_S,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> Dict[float, Tuple[ConfigOutcome, ConfigOutcome]]:
    """Tracking reliability vs per-pass crash probability, 1 vs 2 readers.

    At each rate, every reader independently suffers the canonical
    worst-case crash (:func:`primary_crash_plan` timing) with that
    probability, drawn from a named per-trial stream so the sweep
    replays exactly from its seed. A lone reader's reliability decays
    with the crash rate; the failover pair only loses a pass when
    *both* readers die, so its curve bends like ``1 - rate**2``.
    Returns ``{rate: (single_outcome, failover_outcome)}``.
    """
    results: Dict[float, Tuple[ConfigOutcome, ConfigOutcome]] = {}
    for rate in rates:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {rate!r}")

        sampled = SampledCrashPlanFactory(
            rate=rate,
            crash_fraction=crash_fraction,
            restart_after_s=restart_after_s,
        )
        single = _measure_config(
            single_antenna_portal(),
            f"faults:sweep-single:rate={rate:g}",
            sampled,
            placement,
            repetitions,
            seed,
            stream_label="faults:single",
            workers=workers,
            recorder=recorder,
        )
        failover = _measure_config(
            failover_portal(),
            f"faults:sweep-failover:rate={rate:g}",
            sampled,
            placement,
            repetitions,
            seed,
            stream_label="faults:failover",
            workers=workers,
            recorder=recorder,
        )
        results[rate] = (single, failover)
    return results
