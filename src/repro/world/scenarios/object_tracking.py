"""Table 1 and Table 3/Figure 5 scenarios: tracking tagged router boxes.

The paper: 12 identical boxes, each containing a network router
("metal casing and relatively large size ... a challenging scenario"),
stacked on a cart as three rows of 2x2 and carted past the antenna at
1 m/s and 1 m lane distance, 12 repetitions.

* **Table 1** puts one tag per box at a fixed location (front / side
  closer / side farther / top) and measures per-tag read reliability.
* **Table 3 / Figure 5** adds redundancy: two antennas per portal,
  two tags per box (front + side), or both, and measures per-object
  *tracking* reliability against the analytical R_C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.experiment import DEFAULT_SEED, run_trials, stable_hash
from ...core.parallel import PassTrialTask
from ...core.redundancy import combined_reliability
from ...core.reliability import ReliabilityEstimate, tracking_success
from ...obs.recorder import Recorder
from ...protocol.epc import EpcFactory
from ..motion import LinearPass
from ..objects import BoxFace, TaggedBox, cart_of_boxes
from ..portal import Portal, dual_antenna_portal, single_antenna_portal
from ..simulation import CarrierGroup, Occluder, PortalPassSimulator

PAPER_BOX_COUNT = 12
PAPER_REPETITIONS = 12

#: Face keys as the paper's Table 1 rows name them.
TABLE1_LOCATIONS: Tuple[BoxFace, ...] = (
    BoxFace.FRONT,
    BoxFace.SIDE_CLOSER,
    BoxFace.SIDE_FARTHER,
    BoxFace.TOP,
)


#: Calibrated carrier-local clutter for a cart of metal-content boxes:
#: the surrounding routers scatter strongly and the scatterers ride
#: with the tags (see CarrierGroup.clutter_sigma_db).
BOX_CART_CLUTTER_SIGMA_DB = 7.0


def _has_box_above(box: TaggedBox, boxes: Sequence[TaggedBox]) -> bool:
    """True when another box sits directly on top of ``box``."""
    for other in boxes:
        if other.box_id == box.box_id:
            continue
        same_column = (
            abs(other.local_position.x - box.local_position.x) < 0.05
            and abs(other.local_position.z - box.local_position.z) < 0.05
        )
        if same_column and other.local_position.y > box.local_position.y:
            return True
    return False


def build_box_cart(
    faces_per_box: Sequence[BoxFace],
    box_count: int = PAPER_BOX_COUNT,
    clutter_sigma_db: float = BOX_CART_CLUTTER_SIGMA_DB,
) -> Tuple[CarrierGroup, List[TaggedBox]]:
    """The loaded cart: boxes with tags on the given faces, plus occluders."""
    if not faces_per_box:
        raise ValueError("each box needs at least one tagged face")
    boxes = cart_of_boxes(box_count=box_count)
    factory = EpcFactory()
    occluders: List[Occluder] = []
    for box in boxes:
        for face in faces_per_box:
            tag = box.attach_tag(factory.next_epc().to_hex(), face)
            if face is BoxFace.TOP and _has_box_above(box, boxes):
                # A stacked box sandwiches the top tag against the
                # upper box's (metal-filled) base: near-contact detuning.
                tag.mount_gap_m = 0.005
        content_centre = box.content_centre()
        if content_centre is not None and box.content is not None:
            occluders.append(
                Occluder(
                    centre=content_centre,
                    radius_m=box.content.radius_m,
                    material=box.content.material,
                )
            )
    carrier = CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=2.5, height_m=0.0
        ),
        tags=[tag for box in boxes for tag in box.all_tags()],
        occluders=occluders,
        clutter_sigma_db=clutter_sigma_db,
    )
    return carrier, boxes


@dataclass
class ObjectTrackingResult:
    """Per-configuration outcome: tag-level and object-level reliability."""

    label: str
    tag_reliability: Dict[BoxFace, ReliabilityEstimate] = field(
        default_factory=dict
    )
    tracking_reliability: Optional[ReliabilityEstimate] = None

    @property
    def average_tag_reliability(self) -> float:
        if not self.tag_reliability:
            raise ValueError("no tag reliabilities recorded")
        rates = [e.rate for e in self.tag_reliability.values()]
        return sum(rates) / len(rates)


def _make_simulator(portal: Portal) -> PortalPassSimulator:
    from ...core.calibration import PaperSetup

    setup = PaperSetup()
    return PortalPassSimulator(portal=portal, env=setup.env, params=setup.params)


def run_table1_experiment(
    locations: Sequence[BoxFace] = TABLE1_LOCATIONS,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    simulator: Optional[PortalPassSimulator] = None,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> Dict[BoxFace, ReliabilityEstimate]:
    """Reproduce Table 1: per-location tag read reliability.

    Each location is measured in its own run (as the paper did: "We
    performed this experiment for different tag locations"), one tag
    per box, 12 boxes x 12 repetitions = 144 Bernoulli trials per row.
    ``recorder`` turns observability on for every pass; results are
    bit-identical with or without it.
    """
    sim = simulator or _make_simulator(single_antenna_portal())
    if recorder is not None:
        sim.recorder = recorder
    results: Dict[BoxFace, ReliabilityEstimate] = {}
    for face in locations:
        carrier, boxes = build_box_cart([face])
        epcs = [t.epc for t in carrier.tags]
        label = f"table1:{face.value}"
        trial_set = run_trials(
            label,
            PassTrialTask(simulator=sim, carriers=(carrier,)),
            repetitions,
            seed=seed ^ stable_hash(face.value),
            workers=workers,
        )
        if recorder is not None:
            recorder.absorb_trial_set(label, trial_set)
        successes = 0
        for outcome in trial_set.outcomes:
            seen = outcome.read_epcs
            successes += sum(1 for epc in epcs if epc in seen)
        results[face] = ReliabilityEstimate(
            successes=successes, trials=len(epcs) * repetitions
        )
    return results


@dataclass(frozen=True)
class RedundancyCase:
    """One Table 3 row: a portal and a tag placement set."""

    name: str
    antennas: int
    faces: Tuple[BoxFace, ...]


TABLE3_CASES: Tuple[RedundancyCase, ...] = (
    RedundancyCase("1 antenna, 1 tag (front)", 1, (BoxFace.FRONT,)),
    RedundancyCase("1 antenna, 1 tag (side)", 1, (BoxFace.SIDE_CLOSER,)),
    RedundancyCase("2 antennas, 1 tag (front)", 2, (BoxFace.FRONT,)),
    RedundancyCase("2 antennas, 1 tag (side)", 2, (BoxFace.SIDE_CLOSER,)),
    RedundancyCase(
        "1 antenna, 2 tags (front+side)", 1, (BoxFace.FRONT, BoxFace.SIDE_CLOSER)
    ),
    RedundancyCase(
        "2 antennas, 2 tags (front+side)", 2, (BoxFace.FRONT, BoxFace.SIDE_CLOSER)
    ),
)


@dataclass
class RedundancyOutcome:
    """Measured tracking reliability plus the paper-style R_C prediction."""

    case: RedundancyCase
    measured: ReliabilityEstimate
    calculated: float


def run_object_redundancy_experiment(
    cases: Sequence[RedundancyCase] = TABLE3_CASES,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    single_opportunity: Optional[Dict[BoxFace, float]] = None,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> List[RedundancyOutcome]:
    """Reproduce Table 3 / Figure 5: redundancy for object tracking.

    ``single_opportunity`` supplies the per-face single-antenna
    reliabilities used for the R_C columns; by default they are
    measured first with :func:`run_table1_experiment`, mirroring the
    paper ("R_C is calculated based on the read reliabilities measured
    in Section 3").
    """
    if single_opportunity is None:
        table1 = run_table1_experiment(
            repetitions=repetitions, seed=seed, workers=workers,
            recorder=recorder,
        )
        single_opportunity = {face: est.rate for face, est in table1.items()}

    outcomes: List[RedundancyOutcome] = []
    for case in cases:
        portal = (
            single_antenna_portal()
            if case.antennas == 1
            else dual_antenna_portal()
        )
        sim = _make_simulator(portal)
        if recorder is not None:
            sim.recorder = recorder
        carrier, boxes = build_box_cart(list(case.faces))
        box_epcs: List[List[str]] = [
            [tag.epc for tag in box.all_tags()] for box in boxes
        ]
        label = f"table3:{case.name}"
        trial_set = run_trials(
            label,
            PassTrialTask(simulator=sim, carriers=(carrier,)),
            repetitions,
            seed=seed ^ stable_hash(case.name),
            workers=workers,
        )
        if recorder is not None:
            recorder.absorb_trial_set(label, trial_set)
        successes = 0
        trials = 0
        for outcome in trial_set.outcomes:
            seen = outcome.read_epcs
            for epcs in box_epcs:
                trials += 1
                if tracking_success(seen, epcs):
                    successes += 1
        measured = ReliabilityEstimate(successes=successes, trials=trials)

        # Paper-style R_C: every (tag, antenna) pair is an opportunity
        # with the single-antenna measured reliability for its face.
        ps = [
            single_opportunity[face]
            for face in case.faces
            for _ in range(case.antennas)
        ]
        outcomes.append(
            RedundancyOutcome(
                case=case, measured=measured, calculated=combined_reliability(ps)
            )
        )
    return outcomes
