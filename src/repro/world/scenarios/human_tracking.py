"""Tables 2, 4 and 5 / Figures 6-7 scenarios: tracking people.

The paper hangs tags at waist level ("from the belt or pocket, as
often seen with ID cards") and walks one or two volunteers past the
antenna at ~1 m, 20 repetitions per configuration. Two-subject walks
are abreast "to maximize blocking".

* **Table 2** — single tag per placement, one antenna: per-placement
  read reliability for one subject and for the closer/farther of two.
* **Table 4** — redundant tags (2 or 4 per person), one antenna.
* **Table 5** — one, two or four tags with a two-antenna portal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...core.experiment import DEFAULT_SEED, run_trials, stable_hash
from ...core.parallel import PassTrialTask
from ...core.redundancy import combined_reliability
from ...core.reliability import ReliabilityEstimate, tracking_success
from ...obs.recorder import Recorder
from ...protocol.epc import EpcFactory
from ..humans import Human, HumanTagPlacement, two_abreast
from ..motion import LinearPass
from ..portal import Portal, dual_antenna_portal, single_antenna_portal
from ..simulation import CarrierGroup, Occluder, PortalPassSimulator

PAPER_REPETITIONS = 20

#: Placement sets used by the redundancy tables.
PLACEMENT_SETS: Dict[str, Tuple[str, ...]] = {
    "front_back": (HumanTagPlacement.FRONT, HumanTagPlacement.BACK),
    "sides": (HumanTagPlacement.SIDE_CLOSER, HumanTagPlacement.SIDE_FARTHER),
    "all": (
        HumanTagPlacement.FRONT,
        HumanTagPlacement.BACK,
        HumanTagPlacement.SIDE_CLOSER,
        HumanTagPlacement.SIDE_FARTHER,
    ),
}


#: Calibrated carrier-local clutter for walking subjects: the body and
#: hanging tag sway and scatter, and both move with the tag.
HUMAN_CLUTTER_SIGMA_DB = 5.0


def build_walk(
    subjects: int,
    placements: Sequence[str],
    clutter_sigma_db: float = HUMAN_CLUTTER_SIGMA_DB,
) -> Tuple[CarrierGroup, List[Human]]:
    """One or two subjects walking the lane with tags at ``placements``."""
    if subjects not in (1, 2):
        raise ValueError(f"the paper tests 1 or 2 subjects, got {subjects!r}")
    if not placements:
        raise ValueError("need at least one tag placement")
    humans = (
        [Human("subject-0")] if subjects == 1 else two_abreast()
    )
    factory = EpcFactory()
    for human in humans:
        for placement in placements:
            human.attach_tag(factory.next_epc().to_hex(), placement)
    occluders = [
        Occluder(
            centre=h.torso_centre(),
            radius_m=h.torso_radius_m,
            material=h.torso_material,
            reflective=True,
        )
        for h in humans
    ]
    carrier = CarrierGroup(
        motion=LinearPass.centered_lane_pass(
            lane_distance_m=1.0, speed_mps=1.0, half_span_m=2.0, height_m=0.0
        ),
        tags=[t for h in humans for t in h.tags],
        occluders=occluders,
        clutter_sigma_db=clutter_sigma_db,
    )
    return carrier, humans


def _make_simulator(portal: Portal) -> PortalPassSimulator:
    from ...core.calibration import PaperSetup

    setup = PaperSetup()
    return PortalPassSimulator(portal=portal, env=setup.env, params=setup.params)


@dataclass
class HumanPlacementResult:
    """Table 2 style row: reliability per placement and subject role."""

    placement: str
    one_subject: ReliabilityEstimate
    two_subject_closer: ReliabilityEstimate
    two_subject_farther: ReliabilityEstimate

    @property
    def two_subject_average(self) -> float:
        return (
            self.two_subject_closer.rate + self.two_subject_farther.rate
        ) / 2.0


def run_table2_experiment(
    placements: Sequence[str] = (
        HumanTagPlacement.FRONT,
        HumanTagPlacement.SIDE_CLOSER,
        HumanTagPlacement.SIDE_FARTHER,
    ),
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> Dict[str, HumanPlacementResult]:
    """Reproduce Table 2: per-placement read reliability, 1 and 2 subjects.

    The paper's "Front / Back" row pools the two symmetric placements;
    we measure FRONT and report it for that row (BACK is symmetric
    under the pass geometry). ``recorder`` turns observability on for
    every pass; results are bit-identical with or without it.
    """
    sim = _make_simulator(single_antenna_portal())
    if recorder is not None:
        sim.recorder = recorder
    results: Dict[str, HumanPlacementResult] = {}
    for placement in placements:
        # One subject.
        carrier1, humans1 = build_walk(1, [placement])
        epc1 = humans1[0].tags[0].epc
        label1 = f"table2:one:{placement}"
        set1 = run_trials(
            label1,
            PassTrialTask(simulator=sim, carriers=(carrier1,)),
            repetitions,
            seed=seed ^ stable_hash("one:" + placement),
            workers=workers,
        )
        if recorder is not None:
            recorder.absorb_trial_set(label1, set1)
        one = set1.success_estimate(lambda r: epc1 in r.read_epcs)

        # Two subjects, same placement on each.
        carrier2, humans2 = build_walk(2, [placement])
        closer_epc = humans2[0].tags[0].epc
        farther_epc = humans2[1].tags[0].epc
        label2 = f"table2:two:{placement}"
        set2 = run_trials(
            label2,
            PassTrialTask(simulator=sim, carriers=(carrier2,)),
            repetitions,
            seed=seed ^ stable_hash("two:" + placement),
            workers=workers,
        )
        if recorder is not None:
            recorder.absorb_trial_set(label2, set2)
        closer = set2.success_estimate(lambda r: closer_epc in r.read_epcs)
        farther = set2.success_estimate(lambda r: farther_epc in r.read_epcs)
        results[placement] = HumanPlacementResult(
            placement=placement,
            one_subject=one,
            two_subject_closer=closer,
            two_subject_farther=farther,
        )
    return results


@dataclass(frozen=True)
class HumanRedundancyCase:
    """One Table 4/5 row."""

    name: str
    antennas: int
    subjects: int
    placement_set: str


@dataclass
class HumanRedundancyOutcome:
    """Measured person-tracking reliability plus paper-style R_C."""

    case: HumanRedundancyCase
    measured_per_person: Dict[str, ReliabilityEstimate]
    calculated: float

    @property
    def measured_average(self) -> float:
        rates = [e.rate for e in self.measured_per_person.values()]
        return sum(rates) / len(rates)


def run_human_redundancy_experiment(
    cases: Sequence[HumanRedundancyCase],
    single_opportunity: Dict[str, float],
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    workers: Optional[int] = None,
) -> List[HumanRedundancyOutcome]:
    """Tables 4 and 5: tag- and antenna-level redundancy for people.

    ``single_opportunity`` maps placement name to its single-antenna
    single-subject reliability (Table 2 measurements), used for the R_C
    column exactly as the paper does.
    """
    outcomes: List[HumanRedundancyOutcome] = []
    for case in cases:
        portal = (
            single_antenna_portal()
            if case.antennas == 1
            else dual_antenna_portal()
        )
        sim = _make_simulator(portal)
        placements = PLACEMENT_SETS[case.placement_set]
        carrier, humans = build_walk(case.subjects, placements)
        person_epcs = {
            h.person_id: [t.epc for t in h.tags] for h in humans
        }
        trial_set = run_trials(
            f"human-redundancy:{case.name}",
            PassTrialTask(simulator=sim, carriers=(carrier,)),
            repetitions,
            seed=seed ^ stable_hash(case.name),
            workers=workers,
        )
        measured: Dict[str, ReliabilityEstimate] = {}
        for person_id, epcs in person_epcs.items():
            measured[person_id] = ReliabilityEstimate.from_outcomes(
                [
                    tracking_success(o.read_epcs, epcs)
                    for o in trial_set.outcomes
                ]
            )
        ps = [
            single_opportunity[p]
            for p in placements
            for _ in range(case.antennas)
        ]
        outcomes.append(
            HumanRedundancyOutcome(
                case=case,
                measured_per_person=measured,
                calculated=combined_reliability(ps),
            )
        )
    return outcomes


TABLE4_CASES: Tuple[HumanRedundancyCase, ...] = (
    HumanRedundancyCase("1ant/2tags/front+back/1subj", 1, 1, "front_back"),
    HumanRedundancyCase("1ant/2tags/sides/1subj", 1, 1, "sides"),
    HumanRedundancyCase("1ant/4tags/all/1subj", 1, 1, "all"),
    HumanRedundancyCase("1ant/2tags/front+back/2subj", 1, 2, "front_back"),
    HumanRedundancyCase("1ant/2tags/sides/2subj", 1, 2, "sides"),
    HumanRedundancyCase("1ant/4tags/all/2subj", 1, 2, "all"),
)

TABLE5_CASES: Tuple[HumanRedundancyCase, ...] = (
    HumanRedundancyCase("2ant/2tags/front+back/1subj", 2, 1, "front_back"),
    HumanRedundancyCase("2ant/2tags/sides/1subj", 2, 1, "sides"),
    HumanRedundancyCase("2ant/4tags/all/1subj", 2, 1, "all"),
    HumanRedundancyCase("2ant/2tags/front+back/2subj", 2, 2, "front_back"),
    HumanRedundancyCase("2ant/2tags/sides/2subj", 2, 2, "sides"),
    HumanRedundancyCase("2ant/4tags/all/2subj", 2, 2, "all"),
)
