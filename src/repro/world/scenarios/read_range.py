"""Figure 2 scenario: read reliability vs tag-antenna distance.

The paper: 20 tags in a single plane parallel to the antenna (Figure 1
grid, 12.5 cm x-pitch and 20 cm y-pitch — comfortably beyond coupling
range), fixed facing the antenna, a single read per measurement,
repeated 40 times per distance from 1 m to 10 m.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ...core.experiment import DEFAULT_SEED, run_trials
from ...core.parallel import PassTrialTask
from ...core.reliability import CountDistribution
from ...obs.recorder import Recorder
from ...protocol.epc import EpcFactory
from ...rf.geometry import Vec3
from ..motion import StationaryPlacement
from ..portal import single_antenna_portal
from ..simulation import CarrierGroup, PortalPassSimulator
from ..tags import Tag, TagOrientation

#: The paper's grid: 20 tags, 5 columns x 4 rows.
GRID_COLUMNS = 5
GRID_ROWS = 4
X_PITCH_M = 0.125
Y_PITCH_M = 0.20

#: Airtime of one "single read" poll: one HTTP-triggered inventory
#: cycle. 0.5 s resolves 20 unobstructed tags with margin.
SINGLE_READ_WINDOW_S = 0.5

PAPER_DISTANCES_M = (1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0)
PAPER_REPETITIONS = 40


def build_tag_plane(distance_m: float) -> CarrierGroup:
    """The 20-tag plane at ``distance_m`` from the antenna, facing it."""
    if distance_m <= 0.0:
        raise ValueError(f"distance must be positive, got {distance_m!r}")
    factory = EpcFactory()
    tags: List[Tag] = []
    x0 = -(GRID_COLUMNS - 1) / 2.0 * X_PITCH_M
    y0 = 1.0 - (GRID_ROWS - 1) / 2.0 * Y_PITCH_M
    for row in range(GRID_ROWS):
        for col in range(GRID_COLUMNS):
            tags.append(
                Tag(
                    epc=factory.next_epc().to_hex(),
                    local_position=Vec3(
                        x0 + col * X_PITCH_M, y0 + row * Y_PITCH_M, 0.0
                    ),
                    orientation=TagOrientation.CASE_2_HORIZONTAL_FACING,
                    label=f"grid-{row}-{col}",
                )
            )
    return CarrierGroup(
        motion=StationaryPlacement(
            position=Vec3(0.0, 0.0, distance_m),
            duration_s=SINGLE_READ_WINDOW_S,
        ),
        tags=tags,
    )


@dataclass
class ReadRangePoint:
    """Result at one distance: the tags-read distribution over repetitions."""

    distance_m: float
    distribution: CountDistribution

    @property
    def mean_tags_read(self) -> float:
        return self.distribution.mean


def run_read_range_experiment(
    distances_m: Sequence[float] = PAPER_DISTANCES_M,
    repetitions: int = PAPER_REPETITIONS,
    seed: int = DEFAULT_SEED,
    simulator: PortalPassSimulator = None,
    workers: Optional[int] = None,
    recorder: Optional[Recorder] = None,
) -> Dict[float, ReadRangePoint]:
    """Reproduce Figure 2: mean (and quartiles) of tags read per distance.

    ``recorder``, when given, is attached to the simulator for every
    pass and absorbs each distance's trial set (observations plus
    per-trial wall times) — recording never perturbs the results.
    """
    from ...core.calibration import PaperSetup

    setup = PaperSetup()
    sim = simulator or PortalPassSimulator(
        portal=single_antenna_portal(tx_power_dbm=setup.tx_power_dbm),
        env=setup.env,
        params=setup.params,
    )
    if recorder is not None:
        sim.recorder = recorder
    results: Dict[float, ReadRangePoint] = {}
    for distance in distances_m:
        carrier = build_tag_plane(distance)
        epcs = [t.epc for t in carrier.tags]
        label = f"read-range@{distance}m"
        trial_set = run_trials(
            label,
            PassTrialTask(simulator=sim, carriers=(carrier,)),
            repetitions,
            seed=seed ^ int(distance * 1000),
            workers=workers,
        )
        if recorder is not None:
            recorder.absorb_trial_set(label, trial_set)
        distribution = trial_set.count_distribution(
            lambda r: r.tags_read(epcs), total=len(epcs)
        )
        results[distance] = ReadRangePoint(distance, distribution)
    return results
