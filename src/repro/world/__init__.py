"""Physical world model: tags, objects, humans, portals, motion, passes."""

from .humans import (
    REFLECTION_GAIN_DB,
    TORSO_RADIUS_M,
    WAIST_HEIGHT_M,
    Human,
    HumanTagPlacement,
    two_abreast,
)
from .motion import (
    PAPER_LANE_DISTANCE_M,
    PAPER_PASS_SPEED_MPS,
    LinearPass,
    StationaryPlacement,
)
from .objects import BoxContent, BoxFace, TaggedBox, cart_of_boxes
from .portal import (
    ANTENNA_HEIGHT_M,
    PAPER_ANTENNA_SPACING_M,
    AntennaInstallation,
    Portal,
    ReaderAssignment,
    dual_antenna_portal,
    dual_reader_portal,
    failover_portal,
    single_antenna_portal,
)
from .simulation import (
    CarrierGroup,
    Occluder,
    PassResult,
    PortalPassSimulator,
    SimulationParameters,
)
from .tags import (
    ALL_ORIENTATIONS,
    PAPER_TAG_LENGTH_M,
    PAPER_TAG_WIDTH_M,
    Tag,
    TagOrientation,
)

from .ambient import (
    AmbientZone,
    FalsePositiveReport,
    build_ambient_carrier,
    classify_reads,
)

from .active_tags import ActiveTagModel, ActiveTagSimulator
from .tag_designs import (
    DESIGNS,
    DesignCharacteristics,
    TagDesign,
    characteristics,
    design_detuning_db,
    design_gain_dbi,
    expected_read_reliability,
    worst_case_pattern_loss_db,
)

from .read_zone import ReadZoneMap, map_read_zone

__all__ = [
    "ReadZoneMap",
    "map_read_zone",

    "ActiveTagModel",
    "ActiveTagSimulator",
    "DESIGNS",
    "DesignCharacteristics",
    "TagDesign",
    "characteristics",
    "design_detuning_db",
    "design_gain_dbi",
    "expected_read_reliability",
    "worst_case_pattern_loss_db",

    "AmbientZone",
    "FalsePositiveReport",
    "build_ambient_carrier",
    "classify_reads",

    "REFLECTION_GAIN_DB",
    "TORSO_RADIUS_M",
    "WAIST_HEIGHT_M",
    "Human",
    "HumanTagPlacement",
    "two_abreast",
    "PAPER_LANE_DISTANCE_M",
    "PAPER_PASS_SPEED_MPS",
    "LinearPass",
    "StationaryPlacement",
    "BoxContent",
    "BoxFace",
    "TaggedBox",
    "cart_of_boxes",
    "ANTENNA_HEIGHT_M",
    "PAPER_ANTENNA_SPACING_M",
    "AntennaInstallation",
    "Portal",
    "ReaderAssignment",
    "dual_antenna_portal",
    "dual_reader_portal",
    "failover_portal",
    "single_antenna_portal",
    "CarrierGroup",
    "Occluder",
    "PassResult",
    "PortalPassSimulator",
    "SimulationParameters",
    "Tag",
    "TagOrientation",
    "ALL_ORIENTATIONS",
    "PAPER_TAG_LENGTH_M",
    "PAPER_TAG_WIDTH_M",
]
