"""Alternative tag designs — the paper's second future-work axis.

"Future extensions of this work involve ... tag reliability for
different tag designs" (Section 5). Each design modifies the pieces of
the link budget that inlay engineering actually controls:

* **single dipole** — the paper's Symbol inlay: best peak gain, deep
  axial nulls (the Figure 4 cases 1/5 problem);
* **dual (crossed) dipole** — orientation-insensitive: two orthogonal
  dipoles share the chip, trading ~3 dB of peak gain for no nulls;
* **near-field loop** — magnetic coupling for item-level tagging:
  immune to detuning and coupling, but centimetre range;
* **metal-mount (foam spacer)** — a dipole over a spacer and ground
  plane: sacrifices 2 dB and thickness to survive mounting on metal —
  the engineered fix for the paper's "top of the box" 29%.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict

from ..rf.antenna import NULL_FLOOR_DB, DipoleAntenna
from ..rf.geometry import Vec3
from ..rf.materials import Material


class TagDesign(enum.Enum):
    SINGLE_DIPOLE = "single-dipole"
    DUAL_DIPOLE = "dual-dipole"
    NEAR_FIELD_LOOP = "near-field-loop"
    METAL_MOUNT = "metal-mount"


@dataclass(frozen=True)
class DesignCharacteristics:
    """Link-budget modifiers of one inlay design."""

    design: TagDesign
    peak_gain_dbi: float
    orientation_insensitive: bool
    detuning_factor: float   # multiplies material detuning (0 = immune)
    coupling_factor: float   # multiplies inter-tag coupling
    max_range_factor: float  # scales usable range vs single dipole
    unit_cost_usd: float

    def __post_init__(self) -> None:
        for name in ("detuning_factor", "coupling_factor"):
            value = getattr(self, name)
            if not 0.0 <= value <= 2.0:
                raise ValueError(f"{name} must be in [0, 2], got {value!r}")


DESIGNS: Dict[TagDesign, DesignCharacteristics] = {
    TagDesign.SINGLE_DIPOLE: DesignCharacteristics(
        design=TagDesign.SINGLE_DIPOLE,
        peak_gain_dbi=2.15,
        orientation_insensitive=False,
        detuning_factor=1.0,
        coupling_factor=1.0,
        max_range_factor=1.0,
        unit_cost_usd=0.05,
    ),
    TagDesign.DUAL_DIPOLE: DesignCharacteristics(
        design=TagDesign.DUAL_DIPOLE,
        peak_gain_dbi=-0.85,  # 2.15 - 3 dB power split
        orientation_insensitive=True,
        detuning_factor=1.0,
        coupling_factor=0.7,  # orthogonal elements couple less
        max_range_factor=0.8,
        unit_cost_usd=0.09,
    ),
    TagDesign.NEAR_FIELD_LOOP: DesignCharacteristics(
        design=TagDesign.NEAR_FIELD_LOOP,
        # Magnetic coupling barely radiates: the effective far-field
        # gain at portal ranges is tens of dB down, which is the whole
        # reason loop tags are an item-level (centimetres) technology.
        peak_gain_dbi=-25.0,
        orientation_insensitive=True,
        detuning_factor=0.1,
        coupling_factor=0.2,
        max_range_factor=0.05,  # centimetres, not metres
        unit_cost_usd=0.07,
    ),
    TagDesign.METAL_MOUNT: DesignCharacteristics(
        design=TagDesign.METAL_MOUNT,
        peak_gain_dbi=0.0,
        orientation_insensitive=False,
        detuning_factor=0.05,  # the ground plane *is* the design
        coupling_factor=0.8,
        max_range_factor=0.85,
        unit_cost_usd=0.80,
    ),
}


def characteristics(design: TagDesign) -> DesignCharacteristics:
    """Lookup, with a helpful error for stale enum values."""
    try:
        return DESIGNS[design]
    except KeyError:
        known = ", ".join(d.value for d in DESIGNS)
        raise KeyError(f"unknown design {design!r}; known: {known}") from None


def design_gain_dbi(
    design: TagDesign, direction: Vec3, dipole_axis: Vec3
) -> float:
    """Pattern gain of a design toward ``direction``.

    Orientation-insensitive designs (dual dipole, loop) present their
    peak gain in (almost) every direction — the whole point of the
    design; others follow the dipole doughnut.
    """
    spec = characteristics(design)
    if spec.orientation_insensitive:
        return spec.peak_gain_dbi
    dipole = DipoleAntenna(broadside_gain_dbi=spec.peak_gain_dbi)
    return dipole.gain_dbi(direction, dipole_axis)


def design_detuning_db(
    design: TagDesign, material: Material, mount_gap_m: float
) -> float:
    """Mounting detuning after the design's mitigation."""
    spec = characteristics(design)
    return spec.detuning_factor * material.detuning_loss_db(mount_gap_m)


def worst_case_pattern_loss_db(design: TagDesign) -> float:
    """Peak-to-null pattern depth — the orientation penalty a careless
    placement can incur. Zero for orientation-insensitive designs."""
    spec = characteristics(design)
    if spec.orientation_insensitive:
        return 0.0
    return -NULL_FLOOR_DB


def expected_read_reliability(
    design: TagDesign,
    base_reliability: float,
    on_metal: bool = False,
    orientation_controlled: bool = True,
) -> float:
    """First-order reliability estimate for a placement scenario.

    A planning heuristic (not a simulation): start from the
    single-dipole baseline measured for the placement, then apply the
    design's gain delta, orientation exposure, and detuning mitigation
    through a logistic link-margin model.
    """
    if not 0.0 < base_reliability < 1.0:
        raise ValueError(
            f"base reliability must be in (0, 1), got {base_reliability!r}"
        )
    spec = characteristics(design)
    baseline = DESIGNS[TagDesign.SINGLE_DIPOLE]
    # Convert reliability to an equivalent margin (logit, 2 dB/unit).
    margin_db = 2.0 * math.log(base_reliability / (1.0 - base_reliability))
    margin_db += spec.peak_gain_dbi - baseline.peak_gain_dbi
    if on_metal:
        # The single-dipole baseline already paid full detuning; the
        # design recovers the difference (~20 dB scale).
        margin_db += (baseline.detuning_factor - spec.detuning_factor) * 20.0
    if not orientation_controlled and not spec.orientation_insensitive:
        margin_db -= 6.0  # random orientation exposure
    reliability = 1.0 / (1.0 + math.exp(-margin_db / 2.0))
    return min(max(reliability, 0.0), 1.0)
