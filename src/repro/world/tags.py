"""Tag inlays and the paper's six test orientations.

World-frame conventions (see :mod:`repro.rf.geometry`): carts and
people move along **+x**, **y** is up, and the reader antenna looks
along **+z** into the lane, so "toward the antenna" is **-z** from the
moving object's point of view.

The paper's Figure 3 tests six orientations of the Symbol single-dipole
inlay (2.5 cm x 10 cm). What matters physically is the direction of the
**dipole axis** (sets the pattern null) and the **inlay normal** (sets
the stacking direction for the inter-tag-distance experiments and which
mounting surface the tag touches). Orientations 1 and 5 point the
dipole at the antenna — those are the paper's "perpendicular to the
antenna" worst cases.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple

from ..rf.antenna import DipoleAntenna
from ..rf.geometry import Vec3
from ..rf.materials import AIR, Material

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .tag_designs import TagDesign as TagDesignRef
else:
    TagDesignRef = "TagDesign"

#: Symbol single-dipole inlay footprint from the paper (metres).
PAPER_TAG_LENGTH_M = 0.10
PAPER_TAG_WIDTH_M = 0.025


class TagOrientation(enum.Enum):
    """The six orientations of Figure 3, as (dipole axis, inlay normal).

    Axis vectors are in the *carrier frame* (the cart/box/person frame,
    aligned with the world frame for straight-line passes).
    """

    #: 1 — dipole points down the lane axis *at* the antenna (face sideways):
    #: pattern null toward the reader. Paper's worst case.
    CASE_1_AXIAL_EDGE = (Vec3(0.0, 0.0, 1.0), Vec3(1.0, 0.0, 0.0))
    #: 2 — dipole horizontal along the movement direction, face to the
    #: antenna. The canonical "label facing the reader" placement.
    CASE_2_HORIZONTAL_FACING = (Vec3(1.0, 0.0, 0.0), Vec3(0.0, 0.0, -1.0))
    #: 3 — dipole vertical, face to the antenna.
    CASE_3_VERTICAL_FACING = (Vec3(0.0, 1.0, 0.0), Vec3(0.0, 0.0, -1.0))
    #: 4 — dipole along movement, lying flat (face up).
    CASE_4_HORIZONTAL_FLAT = (Vec3(1.0, 0.0, 0.0), Vec3(0.0, 1.0, 0.0))
    #: 5 — dipole at the antenna, lying flat. Paper's other worst case.
    CASE_5_AXIAL_FLAT = (Vec3(0.0, 0.0, 1.0), Vec3(0.0, 1.0, 0.0))
    #: 6 — dipole vertical, edge to the antenna (face down the lane).
    CASE_6_VERTICAL_EDGE = (Vec3(0.0, 1.0, 0.0), Vec3(1.0, 0.0, 0.0))

    @property
    def dipole_axis(self) -> Vec3:
        return self.value[0]

    @property
    def normal(self) -> Vec3:
        return self.value[1]

    @property
    def case_number(self) -> int:
        """The 1-based case index used in the paper's Figure 3/4."""
        return int(self.name.split("_")[1])

    @property
    def is_perpendicular_to_antenna(self) -> bool:
        """True for the two cases whose dipole points at the reader."""
        return abs(self.dipole_axis.z) > 0.5


ALL_ORIENTATIONS: Tuple[TagOrientation, ...] = tuple(TagOrientation)


@dataclass
class Tag:
    """One passive tag instance placed on a carrier.

    Attributes
    ----------
    epc:
        Unique EPC hex string (24 hex digits).
    local_position:
        Position in the carrier's body frame (metres).
    orientation:
        One of the six Figure 3 orientations (carrier frame).
    mount_material:
        The material immediately behind the inlay (cardboard for the
        bare-tag tests, metal for router boxes, body for humans).
    mount_gap_m:
        Distance between inlay and that material; controls the
        grounding/detuning penalty.
    antenna:
        Radiating element model.
    design:
        Optional inlay design (see :mod:`repro.world.tag_designs`).
        ``None`` means the paper's single-dipole inlay with the link
        environment's stock antenna; a design overrides the pattern,
        scales mounting detuning, and scales inter-tag coupling.
    """

    epc: str
    local_position: Vec3 = field(default_factory=Vec3.zero)
    orientation: TagOrientation = TagOrientation.CASE_2_HORIZONTAL_FACING
    mount_material: Material = AIR
    mount_gap_m: float = 0.01
    antenna: DipoleAntenna = field(default_factory=DipoleAntenna)
    label: str = ""
    design: Optional["TagDesignRef"] = None

    def __post_init__(self) -> None:
        if len(self.epc) != 24:
            raise ValueError(
                f"EPC hex must be 24 digits (96 bits), got {len(self.epc)}"
            )
        int(self.epc, 16)  # raises ValueError on malformed hex
        if self.mount_gap_m < 0.0:
            raise ValueError(
                f"mount gap must be non-negative, got {self.mount_gap_m!r}"
            )

    def detuning_db(self) -> float:
        """Grounding-plate penalty from the mounting material.

        A metal-mount or loop design largely shrugs this off (see
        ``tag_designs.DesignCharacteristics.detuning_factor``).
        """
        raw = self.mount_material.detuning_loss_db(self.mount_gap_m)
        if self.design is None:
            return raw
        from .tag_designs import characteristics

        return characteristics(self.design).detuning_factor * raw

    def pattern_gain_dbi(self, direction: Vec3) -> float:
        """Antenna gain toward ``direction`` honouring the inlay design."""
        if self.design is None:
            return self.antenna.gain_dbi(direction, self.world_dipole_axis())
        from .tag_designs import design_gain_dbi

        return design_gain_dbi(
            self.design, direction, self.world_dipole_axis()
        )

    def coupling_factor(self) -> float:
        """Multiplier on inter-tag coupling penalties for this inlay."""
        if self.design is None:
            return 1.0
        from .tag_designs import characteristics

        return characteristics(self.design).coupling_factor

    def world_position(self, carrier_position: Vec3) -> Vec3:
        """Tag position when the carrier origin sits at ``carrier_position``.

        Straight-line passes keep the carrier frame aligned with the
        world frame, so this is a pure translation.
        """
        return carrier_position + self.local_position

    def world_dipole_axis(self) -> Vec3:
        """Dipole axis in the world frame (aligned carrier assumption)."""
        return self.orientation.dipole_axis
