"""Tagged objects: boxes with RF-hostile contents.

The paper's object-tracking workload is twelve identical cardboard
boxes each containing a network router — "the metal casing and
relatively large size of the routers compared to their packaging
material would make them a challenging scenario". A
:class:`TaggedBox` models that: a cardboard shell, a metal content
blob (sphere, for occlusion chords), and tags placed on named faces.

Face placement drives three physical effects:

* **occlusion** — the path from the antenna to a tag on the far side
  passes through the content metal (and through neighbouring boxes);
* **detuning** — a tag close to the content metal is grounded; the top
  face sits nearest the router, which is why the paper measures top
  tags at 29%;
* **orientation** — each face fixes the inlay normal, and placements
  use the horizontal-dipole orientation a person naturally applies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..rf.geometry import Vec3
from ..rf.materials import CARDBOARD, METAL, Material
from .tags import Tag, TagOrientation


class BoxFace(enum.Enum):
    """Named faces in the carrier frame (movement +x, antenna at -z)."""

    FRONT = "front"            # leading face (+x)
    BACK = "back"              # trailing face (-x)
    SIDE_CLOSER = "side_closer"    # face toward the antenna (-z)
    SIDE_FARTHER = "side_farther"  # face away from the antenna (+z)
    TOP = "top"                # +y
    BOTTOM = "bottom"          # -y


#: Outward normal of each face in the carrier frame.
_FACE_NORMALS: Dict[BoxFace, Vec3] = {
    BoxFace.FRONT: Vec3(1.0, 0.0, 0.0),
    BoxFace.BACK: Vec3(-1.0, 0.0, 0.0),
    BoxFace.SIDE_CLOSER: Vec3(0.0, 0.0, -1.0),
    BoxFace.SIDE_FARTHER: Vec3(0.0, 0.0, 1.0),
    BoxFace.TOP: Vec3(0.0, 1.0, 0.0),
    BoxFace.BOTTOM: Vec3(0.0, -1.0, 0.0),
}

#: Natural tag orientation per face: labels are applied with the dipole
#: horizontal, so faces in the xz plane get case 2/1 style orientations
#: and the top gets the flat cases.
_FACE_ORIENTATIONS: Dict[BoxFace, TagOrientation] = {
    BoxFace.FRONT: TagOrientation.CASE_1_AXIAL_EDGE,
    BoxFace.BACK: TagOrientation.CASE_1_AXIAL_EDGE,
    BoxFace.SIDE_CLOSER: TagOrientation.CASE_2_HORIZONTAL_FACING,
    BoxFace.SIDE_FARTHER: TagOrientation.CASE_2_HORIZONTAL_FACING,
    BoxFace.TOP: TagOrientation.CASE_4_HORIZONTAL_FLAT,
    BoxFace.BOTTOM: TagOrientation.CASE_4_HORIZONTAL_FLAT,
}


@dataclass
class BoxContent:
    """The RF-relevant content blob inside a box.

    Modelled as a sphere (for cheap, orientation-free occlusion
    chords) of a given material, centred in the box.
    """

    material: Material = METAL
    radius_m: float = 0.125
    centre_offset: Vec3 = field(default_factory=Vec3.zero)

    def __post_init__(self) -> None:
        if self.radius_m < 0.0:
            raise ValueError(f"radius must be non-negative, got {self.radius_m!r}")


@dataclass
class TaggedBox:
    """A cardboard box with contents and face-mounted tags.

    Parameters
    ----------
    box_id:
        Stable identifier used in traces and back-end records.
    size:
        (x, y, z) edge lengths in metres.
    local_position:
        Centre of the box in the *cart* frame.
    content:
        Occluding content blob, or ``None`` for an empty box.
    shell_material:
        Packaging material (through-loss for rays crossing the shell).
    """

    box_id: str
    size: Vec3 = field(default_factory=lambda: Vec3(0.45, 0.30, 0.40))
    local_position: Vec3 = field(default_factory=Vec3.zero)
    content: Optional[BoxContent] = field(default_factory=BoxContent)
    shell_material: Material = CARDBOARD
    tags: List[Tuple[Tag, BoxFace]] = field(default_factory=list)

    def face_centre(self, face: BoxFace) -> Vec3:
        """Centre of ``face`` in the cart frame."""
        normal = _FACE_NORMALS[face]
        half = Vec3(self.size.x / 2.0, self.size.y / 2.0, self.size.z / 2.0)
        return self.local_position + Vec3(
            normal.x * half.x, normal.y * half.y, normal.z * half.z
        )

    def face_normal(self, face: BoxFace) -> Vec3:
        return _FACE_NORMALS[face]

    def content_centre(self) -> Optional[Vec3]:
        """Centre of the content sphere in the cart frame, if any."""
        if self.content is None:
            return None
        return self.local_position + self.content.centre_offset

    def gap_to_content_m(self, face: BoxFace) -> float:
        """Shortest distance from a face to the content sphere surface.

        This is the mounting gap that drives tag detuning: a large
        router nearly touching the top face grounds a top tag far more
        than a front tag with packaging in between.
        """
        if self.content is None:
            return float("inf")
        face_c = self.face_centre(face)
        content_c = self.content_centre()
        assert content_c is not None
        return max(0.0, face_c.distance_to(content_c) - self.content.radius_m)

    def attach_tag(
        self,
        epc: str,
        face: BoxFace,
        orientation: Optional[TagOrientation] = None,
        label: str = "",
    ) -> Tag:
        """Mount a tag at the centre of ``face`` and register it.

        The tag inherits the face's natural orientation unless one is
        given, and its detuning mount material/gap are derived from the
        box contents.
        """
        mount_material = (
            self.content.material if self.content is not None else self.shell_material
        )
        gap = self.gap_to_content_m(face)
        if gap == float("inf"):
            mount_material = self.shell_material
            gap = 0.0
        tag = Tag(
            epc=epc,
            local_position=self.face_centre(face),
            orientation=orientation or _FACE_ORIENTATIONS[face],
            mount_material=mount_material,
            mount_gap_m=gap,
            label=label or f"{self.box_id}:{face.value}",
        )
        self.tags.append((tag, face))
        return tag

    def all_tags(self) -> List[Tag]:
        return [tag for tag, _ in self.tags]


def cart_of_boxes(
    box_count: int = 12,
    rows: int = 3,
    columns: int = 2,
    layers: int = 2,
    box_size: Vec3 = Vec3(0.45, 0.30, 0.40),
    gap_m: float = 0.02,
) -> List[TaggedBox]:
    """The paper's cart: boxes "as three rows of 2x2 boxes".

    Rows stack along the movement axis (x), columns across the lane
    (z), layers vertically (y). Box centre heights start at the cart
    deck (~0.5 m) so the waist-height antenna sees them roughly
    broadside.

    Returns boxes *without* tags; scenarios attach tags per placement.
    """
    if box_count < 1:
        raise ValueError(f"box count must be >= 1, got {box_count!r}")
    if rows * columns * layers < box_count:
        raise ValueError(
            f"grid {rows}x{columns}x{layers} cannot hold {box_count} boxes"
        )
    deck_height = 0.5
    boxes: List[TaggedBox] = []
    index = 0
    for row in range(rows):
        for layer in range(layers):
            for col in range(columns):
                if index >= box_count:
                    break
                centre = Vec3(
                    (row - (rows - 1) / 2.0) * (box_size.x + gap_m),
                    deck_height + box_size.y / 2.0 + layer * (box_size.y + gap_m),
                    (col - (columns - 1) / 2.0) * (box_size.z + gap_m),
                )
                boxes.append(
                    TaggedBox(box_id=f"box-{index:02d}", size=box_size,
                              local_position=centre)
                )
                index += 1
    return boxes
