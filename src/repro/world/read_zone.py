"""Read-zone mapping: where can a portal actually read?

Deployments need the spatial footprint of a portal — for placing
conveyor lanes inside it and staging areas outside it (the
false-positive concern). This module Monte-Carlo maps the probability
of reading a reference tag over an (x, z) grid at a fixed height,
producing data ready for :func:`repro.analysis.figures.heatmap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.experiment import DEFAULT_SEED
from ..protocol.epc import EpcFactory
from ..rf.geometry import Vec3
from ..sim.rng import SeedSequence
from .motion import StationaryPlacement
from .portal import Portal
from .simulation import CarrierGroup, PortalPassSimulator
from .tags import Tag, TagOrientation


@dataclass(frozen=True)
class ReadZoneMap:
    """P(read) over a regular (x, z) grid at one height."""

    x_values: Tuple[float, ...]
    z_values: Tuple[float, ...]
    height_m: float
    #: probabilities[zi][xi] — row-major with z as the row axis.
    probabilities: Tuple[Tuple[float, ...], ...]

    def probability_at(self, xi: int, zi: int) -> float:
        return self.probabilities[zi][xi]

    def covered_cells(self, threshold: float = 0.9) -> int:
        """Grid cells with read probability at or above ``threshold``."""
        return sum(
            1 for row in self.probabilities for p in row if p >= threshold
        )

    def max_reliable_range_m(self, threshold: float = 0.9) -> float:
        """Largest z (boresight distance) still read at ``threshold``."""
        best = 0.0
        for zi, z in enumerate(self.z_values):
            if any(p >= threshold for p in self.probabilities[zi]):
                best = max(best, z)
        return best


def map_read_zone(
    portal: Portal,
    simulator: Optional[PortalPassSimulator] = None,
    x_range: Tuple[float, float] = (-3.0, 3.0),
    z_range: Tuple[float, float] = (0.5, 8.0),
    steps: int = 12,
    height_m: float = 1.0,
    trials: int = 8,
    dwell_s: float = 0.3,
    orientation: TagOrientation = TagOrientation.CASE_2_HORIZONTAL_FACING,
    seed: int = DEFAULT_SEED,
) -> ReadZoneMap:
    """Monte-Carlo the portal's read zone with a reference tag.

    Each grid cell gets ``trials`` independent stationary dwells of a
    single facing tag; the cell's value is the fraction of dwells with
    at least one read.
    """
    if steps < 2:
        raise ValueError(f"steps must be >= 2, got {steps!r}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials!r}")
    if simulator is None:
        from ..core.calibration import PaperSetup

        setup = PaperSetup()
        simulator = PortalPassSimulator(
            portal=portal, env=setup.env, params=setup.params
        )

    xs = tuple(
        x_range[0] + i * (x_range[1] - x_range[0]) / (steps - 1)
        for i in range(steps)
    )
    zs = tuple(
        z_range[0] + i * (z_range[1] - z_range[0]) / (steps - 1)
        for i in range(steps)
    )
    factory = EpcFactory()
    rows: List[Tuple[float, ...]] = []
    for zi, z in enumerate(zs):
        row: List[float] = []
        for xi, x in enumerate(xs):
            tag = Tag(
                epc=factory.next_epc().to_hex(),
                local_position=Vec3(0.0, height_m, 0.0),
                orientation=orientation,
            )
            carrier = CarrierGroup(
                motion=StationaryPlacement(
                    position=Vec3(x, 0.0, z), duration_s=dwell_s
                ),
                tags=[tag],
            )
            seeds = SeedSequence(seed ^ (zi * 1009 + xi))
            hits = sum(
                1
                for trial in range(trials)
                if simulator.run_pass([carrier], seeds, trial).read_epcs
            )
            row.append(hits / trials)
        rows.append(tuple(row))
    return ReadZoneMap(
        x_values=xs,
        z_values=zs,
        height_m=height_m,
        probabilities=tuple(rows),
    )
