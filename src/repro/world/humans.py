"""Humans carrying tags: body blocking and body reflections.

The paper's human-tracking experiments hang tags at waist level (belt
or pocket) and walk volunteers past the antenna at ~1 m. Two physical
effects dominate the measurements:

* **body blocking** — a tag on the side of the body away from the
  antenna is shadowed by ~0.3 m of water-rich tissue; the paper
  measures that placement at 10%;
* **body reflection** — with two subjects walking abreast, the *closer*
  subject's tags read *better* than alone, which the paper attributes
  to "signal reflections off the farther subject". We model this as a
  small constructive gain whenever another body stands behind the tag
  relative to the antenna.

The torso is modelled as a vertical lossy cylinder, approximated for
occlusion chords by a sphere at waist height (where the tags are).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..rf.geometry import Vec3
from ..rf.materials import BODY, Material
from .tags import Tag, TagOrientation

#: Waist height used for tag placement and the occlusion sphere.
WAIST_HEIGHT_M = 1.0

#: Effective torso radius for occlusion.
TORSO_RADIUS_M = 0.20

#: Constructive reflection gain contributed by a body behind the tag.
REFLECTION_GAIN_DB = 4.0


class HumanTagPlacement:
    """Named waist placements from the paper's Table 2."""

    FRONT = "front"
    BACK = "back"
    SIDE_CLOSER = "side_closer"
    SIDE_FARTHER = "side_farther"

    ALL = (FRONT, BACK, SIDE_CLOSER, SIDE_FARTHER)


#: Local offsets in the person frame (walking +x, antenna at -z).
#: Tags hang just off the body so the mount gap is small but non-zero.
_PLACEMENT_OFFSETS: Dict[str, Vec3] = {
    HumanTagPlacement.FRONT: Vec3(TORSO_RADIUS_M + 0.02, 0.0, 0.0),
    HumanTagPlacement.BACK: Vec3(-(TORSO_RADIUS_M + 0.02), 0.0, 0.0),
    HumanTagPlacement.SIDE_CLOSER: Vec3(0.0, 0.0, -(TORSO_RADIUS_M + 0.02)),
    HumanTagPlacement.SIDE_FARTHER: Vec3(0.0, 0.0, TORSO_RADIUS_M + 0.02),
}

#: ID-card-style hanging tags: dipole horizontal, face outward.
_PLACEMENT_ORIENTATIONS: Dict[str, TagOrientation] = {
    HumanTagPlacement.FRONT: TagOrientation.CASE_1_AXIAL_EDGE,
    HumanTagPlacement.BACK: TagOrientation.CASE_1_AXIAL_EDGE,
    HumanTagPlacement.SIDE_CLOSER: TagOrientation.CASE_2_HORIZONTAL_FACING,
    HumanTagPlacement.SIDE_FARTHER: TagOrientation.CASE_2_HORIZONTAL_FACING,
}


@dataclass
class Human:
    """One walking subject with waist-level tags.

    Parameters
    ----------
    person_id:
        Identifier used in traces.
    local_position:
        Torso centre offset in the *group* frame — for two-subject
        walks the group origin moves and each person is displaced
        laterally within it ("volunteers tried to walk in parallel").
    torso_radius_m, torso_material:
        Occlusion body.
    """

    person_id: str
    local_position: Vec3 = field(default_factory=Vec3.zero)
    torso_radius_m: float = TORSO_RADIUS_M
    torso_material: Material = BODY
    tags: List[Tag] = field(default_factory=list)
    placements: Dict[str, str] = field(default_factory=dict)

    def torso_centre(self) -> Vec3:
        """Occlusion sphere centre in the group frame (waist height)."""
        return self.local_position + Vec3(0.0, WAIST_HEIGHT_M, 0.0)

    def attach_tag(
        self,
        epc: str,
        placement: str,
        label: str = "",
    ) -> Tag:
        """Hang a tag at one of the named waist placements."""
        if placement not in HumanTagPlacement.ALL:
            known = ", ".join(HumanTagPlacement.ALL)
            raise ValueError(f"unknown placement {placement!r}; known: {known}")
        offset = _PLACEMENT_OFFSETS[placement]
        tag = Tag(
            epc=epc,
            local_position=self.torso_centre() + offset,
            orientation=_PLACEMENT_ORIENTATIONS[placement],
            mount_material=self.torso_material,
            # Hanging tags keep a couple of centimetres of clearance;
            # "tags should not touch the body" was the paper's
            # best-performance finding, so this is the good case.
            mount_gap_m=0.02,
            label=label or f"{self.person_id}:{placement}",
        )
        self.tags.append(tag)
        self.placements[epc] = placement
        return tag

    def placement_of(self, epc: str) -> Optional[str]:
        return self.placements.get(epc)


def two_abreast(
    closer_id: str = "subject-closer",
    farther_id: str = "subject-farther",
    shoulder_gap_m: float = 0.50,
) -> List[Human]:
    """Two subjects walking in parallel, one nearer the antenna.

    The paper: "volunteers tried to walk in parallel for the two person
    tests to maximize blocking". The closer subject is displaced toward
    the antenna (-z), the farther away (+z).
    """
    if shoulder_gap_m <= 0.0:
        raise ValueError(
            f"shoulder gap must be positive, got {shoulder_gap_m!r}"
        )
    half = shoulder_gap_m / 2.0
    return [
        Human(closer_id, local_position=Vec3(0.0, 0.0, -half)),
        Human(farther_id, local_position=Vec3(0.0, 0.0, half)),
    ]
