"""Carrier motion through the portal's read zone.

The paper's tracking experiments move tags past a fixed antenna on a
cart (objects) or on foot (humans) at roughly 1 m/s and 1 m lateral
distance. A :class:`LinearPass` captures exactly that: a straight
world-frame trajectory plus the time window during which the reader can
possibly see the tags.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..rf.geometry import Vec3

#: Speed used in all the paper's mobile experiments.
PAPER_PASS_SPEED_MPS = 1.0

#: Lateral tag-antenna distance used in the paper's mobile experiments.
PAPER_LANE_DISTANCE_M = 1.0


@dataclass(frozen=True)
class LinearPass:
    """Uniform straight-line motion of a carrier origin.

    Parameters
    ----------
    start_position:
        Carrier origin at ``t = 0``.
    velocity:
        Constant velocity vector (m/s).
    duration_s:
        Length of the pass; positions are defined on ``[0, duration_s]``.
    """

    start_position: Vec3
    velocity: Vec3
    duration_s: float

    def __post_init__(self) -> None:
        if self.duration_s <= 0.0:
            raise ValueError(
                f"pass duration must be positive, got {self.duration_s!r}"
            )

    def position_at(self, t: float) -> Vec3:
        """Carrier origin at time ``t`` (clamped to the pass window)."""
        clamped = min(max(t, 0.0), self.duration_s)
        return self.start_position + self.velocity * clamped

    @property
    def end_position(self) -> Vec3:
        return self.position_at(self.duration_s)

    @property
    def speed_mps(self) -> float:
        return self.velocity.norm()

    @staticmethod
    def centered_lane_pass(
        lane_distance_m: float = PAPER_LANE_DISTANCE_M,
        speed_mps: float = PAPER_PASS_SPEED_MPS,
        half_span_m: float = 2.0,
        height_m: float = 1.0,
    ) -> "LinearPass":
        """The paper's standard pass: along +x, centred on the antenna.

        The carrier starts ``half_span_m`` before the antenna's x
        position (x = 0) and ends the same distance after, at constant
        ``speed_mps``, in a lane ``lane_distance_m`` in front of the
        antenna (z axis) at ``height_m``.
        """
        if lane_distance_m <= 0.0:
            raise ValueError(
                f"lane distance must be positive, got {lane_distance_m!r}"
            )
        if speed_mps <= 0.0:
            raise ValueError(f"speed must be positive, got {speed_mps!r}")
        if half_span_m <= 0.0:
            raise ValueError(
                f"half span must be positive, got {half_span_m!r}"
            )
        duration = 2.0 * half_span_m / speed_mps
        return LinearPass(
            start_position=Vec3(-half_span_m, height_m, lane_distance_m),
            velocity=Vec3(speed_mps, 0.0, 0.0),
            duration_s=duration,
        )


@dataclass(frozen=True)
class StationaryPlacement:
    """A carrier that does not move (the Figure 2 read-range grid)."""

    position: Vec3
    duration_s: float = 1.0

    def position_at(self, t: float) -> Vec3:
        return self.position
