"""repro — reproduction of "Reliability Techniques for RFID-Based Object
Tracking Applications" (Rahmati, Zhong, Hiltunen, Jana; DSN 2007).

A physics-grounded passive-UHF RFID reliability simulator plus the
paper's redundancy analysis:

* :mod:`repro.rf` — propagation, antennas, materials, link budgets;
* :mod:`repro.sim` — deterministic discrete-event substrate;
* :mod:`repro.protocol` — EPC Gen 2 inventory and baselines;
* :mod:`repro.world` — tags, boxes, humans, portals, pass simulation;
* :mod:`repro.reader` — wire format, middleware, back-end;
* :mod:`repro.core` — reliability metrics, the R_C redundancy model,
  calibration, planning, and software-correction baselines;
* :mod:`repro.analysis` — statistics and table/figure rendering;
* :mod:`repro.obs` — observability: link-budget tracing, miss-cause
  attribution, run metrics, manifests, and the ``explain`` pipeline.

Quickstart::

    from repro import PaperSetup, PortalPassSimulator, single_antenna_portal
    from repro.world.scenarios import run_table1_experiment

    table1 = run_table1_experiment(repetitions=12)
    for face, estimate in table1.items():
        print(face.value, f"{estimate.percent:.0f}%")
"""

from .core import (
    DEFAULT_SEED,
    DeploymentPlanner,
    EmpiricalReliabilityModel,
    PaperSetup,
    ReliabilityEstimate,
    combined_reliability,
    opportunities_needed,
    run_trials,
    tracking_success,
)
from .world import (
    CarrierGroup,
    Human,
    PortalPassSimulator,
    Tag,
    TagOrientation,
    TaggedBox,
    dual_antenna_portal,
    dual_reader_portal,
    failover_portal,
    single_antenna_portal,
)

__version__ = "1.2.0"

__all__ = [
    "DEFAULT_SEED",
    "DeploymentPlanner",
    "EmpiricalReliabilityModel",
    "PaperSetup",
    "ReliabilityEstimate",
    "combined_reliability",
    "opportunities_needed",
    "run_trials",
    "tracking_success",
    "CarrierGroup",
    "Human",
    "PortalPassSimulator",
    "Tag",
    "TagOrientation",
    "TaggedBox",
    "dual_antenna_portal",
    "dual_reader_portal",
    "failover_portal",
    "single_antenna_portal",
    "__version__",
]
