"""Units family: dB and linear quantities must not mix silently.

The simulator's convention (``rf/units.py``) is SI internally, dB at
the edges, and every conversion routed through the helpers there. The
checks infer a quantity's domain from the naming convention the
codebase already follows — ``*_db`` / ``*_dbm`` / ``*_dbi`` are
logarithmic, ``*_w`` / ``*_mw`` / ``*_hz`` / ``*_watts`` /
``*_linear`` / ``*_ratio`` are linear — and flag arithmetic that is
meaningless across domains:

* dB x dB products (gains compose by *addition* in the log domain);
* dB +/- linear sums (the classic "added dBm to watts" budget bug);
* hand-rolled ``10 ** (x_db / 10)`` / ``10 * log10(x)`` conversions
  outside ``rf/units.py``;
* passing a dB-named value into a linear-named keyword parameter (or a
  linear value into a ``rf/units.py`` converter that expects dB, and
  vice versa).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import FileContext, constant_value
from ..findings import Finding
from ..registry import rule

DB = "dB"
LINEAR = "linear"

_DB_SUFFIXES = ("_db", "_dbm", "_dbi")
_DB_EXACT = ("db", "dbm", "dbi")
_LINEAR_SUFFIXES = (
    "_w",
    "_mw",
    "_watts",
    "_milliwatts",
    "_hz",
    "_linear",
    "_ratio",
)
_LINEAR_EXACT = ("watts", "milliwatts", "hz", "ratio")

#: ``rf/units.py`` converters -> domain their first argument must have.
_CONVERTER_ARG_DOMAIN = {
    "db_to_linear": DB,
    "dbm_to_watts": DB,
    "dbm_to_milliwatts": DB,
    "linear_to_db": LINEAR,
    "watts_to_dbm": LINEAR,
    "milliwatts_to_dbm": LINEAR,
}


def name_domain(identifier: str) -> Optional[str]:
    """Domain implied by an identifier's suffix, or None."""
    lowered = identifier.lower()
    if lowered.endswith(_DB_SUFFIXES) or lowered in _DB_EXACT:
        return DB
    if lowered.endswith(_LINEAR_SUFFIXES) or lowered in _LINEAR_EXACT:
        return LINEAR
    return None


def expr_domain(node: ast.AST) -> Optional[str]:
    """Domain of an expression, from the names it is built around.

    Shallow on purpose: a Name or Attribute carries its own suffix, a
    call carries its function's suffix (``friis_path_gain_db(...)`` is
    a dB quantity), and a unary minus is transparent. Anything more
    composite returns None — the rules only fire on unambiguous
    evidence.
    """
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return expr_domain(node.operand)
    if isinstance(node, ast.Name):
        return name_domain(node.id)
    if isinstance(node, ast.Attribute):
        return name_domain(node.attr)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name):
            return name_domain(func.id)
        if isinstance(func, ast.Attribute):
            return name_domain(func.attr)
    return None


def _contains_db_name(node: ast.AST) -> bool:
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and name_domain(child.id) == DB:
            return True
        if isinstance(child, ast.Attribute) and name_domain(child.attr) == DB:
            return True
    return False


def _finding(ctx: FileContext, rule_id: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=ctx.path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        message=message,
    )


def _describe(node: ast.AST) -> str:
    try:
        return ast.unparse(node)  # py>=3.9
    except Exception:
        return "<expression>"


@rule(
    "units-db-product",
    family="units",
    rationale=(
        "dB quantities compose by addition; a dB x dB product is a "
        "domain error that silently corrupts the link budget"
    ),
)
def check_db_product(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult)):
            continue
        if expr_domain(node.left) == DB and expr_domain(node.right) == DB:
            yield _finding(
                ctx,
                "units-db-product",
                node,
                f"product of two dB quantities: {_describe(node)} "
                f"(gains add in the log domain)",
            )


@rule(
    "units-mixed-sum",
    family="units",
    rationale=(
        "adding a dB value to a linear (watts/Hz/ratio) value mixes "
        "incompatible domains; convert via rf/units.py first"
    ),
)
def check_mixed_sum(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not (
            isinstance(node, ast.BinOp)
            and isinstance(node.op, (ast.Add, ast.Sub))
        ):
            continue
        domains = {expr_domain(node.left), expr_domain(node.right)}
        if DB in domains and LINEAR in domains:
            yield _finding(
                ctx,
                "units-mixed-sum",
                node,
                f"dB and linear quantities mixed in a sum: "
                f"{_describe(node)}",
            )


def _is_log10_call(ctx: FileContext, node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = ctx.call_name(node)
    if name in ("math.log10", "numpy.log10"):
        return True
    return isinstance(node.func, ast.Name) and node.func.id == "log10"


@rule(
    "units-bare-conversion",
    family="units",
    rationale=(
        "hand-rolled 10**(x/10) / 10*log10(x) conversions drift from "
        "the rounding conventions in rf/units.py; route through its "
        "helpers"
    ),
)
def check_bare_conversion(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.BinOp):
            continue
        # 10 ** (x_db / 10): dB -> linear by hand.
        if isinstance(node.op, ast.Pow):
            base = constant_value(node.left)
            exponent = node.right
            if (
                base == 10.0
                and isinstance(exponent, ast.BinOp)
                and isinstance(exponent.op, ast.Div)
                and constant_value(exponent.right) in (10.0, 20.0)
                and _contains_db_name(exponent.left)
            ):
                yield _finding(
                    ctx,
                    "units-bare-conversion",
                    node,
                    f"manual dB->linear conversion {_describe(node)}; "
                    f"use repro.rf.units.db_to_linear (or dbm_to_watts)",
                )
        # 10 * log10(x) / 20 * log10(x): linear -> dB by hand.
        elif isinstance(node.op, ast.Mult):
            for coeff, call in (
                (node.left, node.right),
                (node.right, node.left),
            ):
                if abs(constant_value(coeff) or 0.0) in (
                    10.0,
                    20.0,
                ) and _is_log10_call(ctx, call):
                    yield _finding(
                        ctx,
                        "units-bare-conversion",
                        node,
                        f"manual linear->dB conversion {_describe(node)}; "
                        f"use repro.rf.units.linear_to_db (or "
                        f"watts_to_dbm)",
                    )
                    break


@rule(
    "units-domain-arg",
    family="units",
    rationale=(
        "a dB-named value flowing into a linear-named parameter (or "
        "the wrong domain into an rf/units.py converter) is a unit bug "
        "at the call boundary"
    ),
)
def check_domain_arg(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        # Keyword arguments: parameter name vs argument expression.
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            wanted = name_domain(keyword.arg)
            got = expr_domain(keyword.value)
            if wanted and got and wanted != got:
                yield _finding(
                    ctx,
                    "units-domain-arg",
                    keyword.value,
                    f"{got} quantity {_describe(keyword.value)} passed "
                    f"to {wanted} parameter {keyword.arg!r}",
                )
        # Known converters: first positional argument's domain.
        func = node.func
        func_name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        wanted = _CONVERTER_ARG_DOMAIN.get(func_name or "")
        if wanted and node.args:
            got = expr_domain(node.args[0])
            if got and got != wanted:
                yield _finding(
                    ctx,
                    "units-domain-arg",
                    node.args[0],
                    f"{got} quantity {_describe(node.args[0])} passed "
                    f"to {func_name}(), which expects a {wanted} value",
                )
