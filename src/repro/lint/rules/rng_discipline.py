"""RNG-discipline family: raw generators are built in exactly one place.

``sim/rng.py`` derives every stream from ``(root_seed, name)`` so that
adding a new randomness consumer never shifts an existing stream's
sequence. Constructing ``random.Random(...)`` or
``np.random.default_rng(...)`` anywhere else creates a generator whose
seeding is invisible to that scheme — use
``SeedSequence.stream(name)`` / ``RandomStream.spawn(name)`` instead.
The ``sim/rng.py`` exemption lives in the allowlist config, not inline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import rule

RAW_CONSTRUCTORS = frozenset(
    {
        "random.Random",
        "random.SystemRandom",
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
    }
)


@rule(
    "rng-raw-stream",
    family="rng-discipline",
    rationale=(
        "raw RNG construction outside sim/rng.py bypasses derive-by-"
        "name seeding, so streams collide or shift when consumers are "
        "added; go through RandomStream/SeedSequence"
    ),
)
def check_raw_stream(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = ctx.call_name(node)
        if name in RAW_CONSTRUCTORS:
            yield Finding(
                rule_id="rng-raw-stream",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"raw RNG constructed via {name}(); derive a "
                    f"stream through repro.sim.rng instead"
                ),
            )
