"""Rule modules; importing this package registers every rule.

Each module is one rule family from the lint catalogue — see
``docs/lint.md`` for the rationale behind each family and
``repro.lint.registry.rule`` for how to add a new one.
"""

from . import (  # noqa: F401
    determinism,
    exception_hygiene,
    pickle_safety,
    rng_discipline,
    units,
)
