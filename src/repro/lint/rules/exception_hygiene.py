"""Exception-hygiene family: no silently swallowed errors on miss paths.

Scoped (via the allowlist config) to ``reader/supervisor.py``,
``faults/``, and ``core/parallel.py`` — the code that stands between a
raised exception and a reported read. A bare ``except:`` or an
``except Exception: pass`` there converts a real failure into a phantom
missed read, which the miss-cause attribution then confidently labels
with the wrong cause.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..context import FileContext
from ..findings import Finding
from ..registry import rule

_BROAD_TYPES = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _BROAD_TYPES
    return False


def _swallows(handler: ast.ExceptHandler) -> bool:
    """True when the handler body does nothing with the error."""
    for stmt in handler.body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Continue):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            # A docstring or bare ``...`` placeholder.
            continue
        return False
    return True


@rule(
    "except-bare",
    family="exception-hygiene",
    rationale=(
        "bare except: catches KeyboardInterrupt/SystemExit too and "
        "hides the error type; on supervision paths this turns a crash "
        "into a phantom missed read"
    ),
)
def check_bare_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield Finding(
                rule_id="except-bare",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "bare 'except:'; name the exception type (and "
                    "record the failure instead of hiding it)"
                ),
            )


@rule(
    "except-swallow",
    family="exception-hygiene",
    rationale=(
        "'except Exception: pass' on reader/fault/parallel paths "
        "silently converts an error into a missed read with a bogus "
        "miss cause; record or re-raise"
    ),
)
def check_swallowed_except(ctx: FileContext) -> Iterator[Finding]:
    for node in ast.walk(ctx.tree):
        if (
            isinstance(node, ast.ExceptHandler)
            and _is_broad(node)
            and _swallows(node)
        ):
            yield Finding(
                rule_id="except-swallow",
                path=ctx.path,
                line=node.lineno,
                col=node.col_offset,
                message=(
                    "broad exception handler swallows the error; a "
                    "failure here must surface as a recorded fault, "
                    "not a phantom miss"
                ),
            )
