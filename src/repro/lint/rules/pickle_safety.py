"""Pickle-safety family: trial callables must survive a process hop.

``run_trials`` / ``sweep`` fan trials out over a
``ProcessPoolExecutor`` when ``workers`` (or ``REPRO_WORKERS``) is set.
A lambda or nested function cannot be pickled, so the harness silently
falls back to the serial loop — the run still succeeds but the
parallelism quietly evaporates. This rule makes that fallback loud at
review time: callables handed to ``run_trials``, ``sweep``, or an
executor's ``submit`` must be module-level (the trial-task dataclasses
in ``core/parallel.py`` are the intended vehicles).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import FileContext, nested_function_names
from ..findings import Finding
from ..registry import rule

#: call name -> (positional index, keyword name) of the trial callable.
_CALLABLE_SLOT = {
    "run_trials": (1, "trial_fn"),
    "submit": (0, None),
}

#: ``sweep`` takes a *factory*; the factory itself runs in the parent
#: process, so only a factory that literally returns a lambda is flagged.
_SWEEP_SLOT = (2, "trial_fn_factory")


def _simple_call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _callable_arg(
    node: ast.Call, index: int, keyword: Optional[str]
) -> Optional[ast.AST]:
    if keyword is not None:
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
    if len(node.args) > index:
        return node.args[index]
    return None


@rule(
    "pickle-nonportable-task",
    family="pickle-safety",
    rationale=(
        "lambdas/closures passed to run_trials/sweep/submit cannot "
        "cross the process boundary, silently downgrading the run to "
        "serial; use a module-level trial task"
    ),
)
def check_nonportable_task(ctx: FileContext) -> Iterator[Finding]:
    nested = nested_function_names(ctx.tree)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        name = _simple_call_name(node)
        if name in _CALLABLE_SLOT:
            index, keyword = _CALLABLE_SLOT[name]
            arg = _callable_arg(node, index, keyword)
            offender = _nonportable(arg, nested)
            if offender is not None:
                yield _finding(ctx, node, name, offender)
        elif name == "sweep":
            index, keyword = _SWEEP_SLOT
            factory = _callable_arg(node, index, keyword)
            # A lambda factory returning another lambda builds a
            # non-picklable task per sweep point.
            if (
                isinstance(factory, ast.Lambda)
                and isinstance(factory.body, ast.Lambda)
            ):
                yield _finding(ctx, node, name, "a lambda-built lambda")


def _nonportable(arg: Optional[ast.AST], nested: frozenset) -> Optional[str]:
    if isinstance(arg, ast.Lambda):
        return "a lambda"
    if isinstance(arg, ast.Name) and arg.id in nested:
        return f"nested function {arg.id!r}"
    return None


def _finding(
    ctx: FileContext, node: ast.Call, call: str, offender: str
) -> Finding:
    return Finding(
        rule_id="pickle-nonportable-task",
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        message=(
            f"{offender} passed to {call}() cannot be pickled; the "
            f"trial loop silently falls back to serial — use a "
            f"module-level task (see core/parallel.py)"
        ),
    )
