"""Determinism family: no wall clocks, global RNG, or fresh UUIDs.

Golden-trace regression (``validate/golden.py``) pins experiment output
bit-for-bit, and the parallel trial engine relies on every draw being a
pure function of ``(root_seed, stream_name, trial_index)``. A single
``time.time()`` or module-level ``random.random()`` call inside the
simulation path silently breaks both. Provenance stamps at the CLI edge
are legitimate — mark them with an inline
``# repro: allow[det-wallclock] reason`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..context import FileContext
from ..findings import Finding
from ..registry import rule

#: Wall-clock reads whose value leaks into output. Monotonic duration
#: clocks (``time.perf_counter``, ``time.monotonic``) are fine: they
#: feed timing metrics, never simulated outcomes.
WALLCLOCK_BANNED = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level stdlib RNG entry points (shared hidden state).
GLOBAL_RANDOM_BANNED = frozenset(
    {
        "random.random",
        "random.seed",
        "random.uniform",
        "random.randint",
        "random.randrange",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.choice",
        "random.choices",
        "random.sample",
        "random.shuffle",
        "random.getrandbits",
    }
)

#: numpy.random names that are *not* module-level global state and are
#: therefore the rng-discipline rule's business instead of this one's.
_NUMPY_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
    }
)

UUID_BANNED = frozenset({"uuid.uuid1", "uuid.uuid4"})


def _call_finding(
    ctx: FileContext, rule_id: str, node: ast.Call, message: str
) -> Finding:
    return Finding(
        rule_id=rule_id,
        path=ctx.path,
        line=node.lineno,
        col=node.col_offset,
        message=message,
    )


def _resolved_calls(ctx: FileContext) -> Iterator[tuple]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = ctx.call_name(node)
            if name is not None:
                yield node, name


@rule(
    "det-wallclock",
    family="determinism",
    rationale=(
        "wall-clock reads make output depend on when a run happened, "
        "breaking bit-identical golden traces; inject timestamps from "
        "the CLI edge instead"
    ),
)
def check_wallclock(ctx: FileContext) -> Iterator[Finding]:
    for node, name in _resolved_calls(ctx):
        if name in WALLCLOCK_BANNED:
            yield _call_finding(
                ctx,
                "det-wallclock",
                node,
                f"wall-clock call {name}(); thread an injectable "
                f"timestamp (or suppress at a provenance-only edge)",
            )


@rule(
    "det-global-random",
    family="determinism",
    rationale=(
        "module-level random/np.random share hidden global state "
        "across components, correlating 'independent' reader sessions "
        "and breaking seed reproducibility"
    ),
)
def check_global_random(ctx: FileContext) -> Iterator[Finding]:
    for node, name in _resolved_calls(ctx):
        if name in GLOBAL_RANDOM_BANNED:
            yield _call_finding(
                ctx,
                "det-global-random",
                node,
                f"global RNG call {name}(); draw from a named "
                f"repro.sim.rng.RandomStream instead",
            )
        elif (
            name.startswith("numpy.random.")
            and name not in _NUMPY_CONSTRUCTORS
        ):
            yield _call_finding(
                ctx,
                "det-global-random",
                node,
                f"module-level numpy RNG call {name}(); draw from a "
                f"named repro.sim.rng.RandomStream instead",
            )


@rule(
    "det-uuid",
    family="determinism",
    rationale=(
        "uuid1/uuid4 derive from clock and entropy, so identifiers "
        "differ run to run; derive ids from the seed (or uuid5 over "
        "seeded content)"
    ),
)
def check_uuid(ctx: FileContext) -> Iterator[Finding]:
    for node, name in _resolved_calls(ctx):
        if name in UUID_BANNED:
            yield _call_finding(
                ctx,
                "det-uuid",
                node,
                f"nondeterministic id from {name}(); derive ids from "
                f"the experiment seed",
            )
