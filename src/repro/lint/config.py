"""Allowlist configuration: where each rule does and does not apply.

Two per-rule mechanisms, both matching ``fnmatch`` patterns against the
POSIX form of the file path:

* ``allow_paths`` — files exempt from a rule. This is for *structural*
  exemptions, the places a convention is implemented rather than
  consumed: ``rf/units.py`` is where bare dB arithmetic lives,
  ``sim/rng.py`` is the one module allowed to construct raw RNGs.
* ``only_paths`` — rules that are scoped to a subset of the tree. The
  exception-hygiene family only gates the supervision/fault/parallel
  paths where a swallowed exception silently becomes a phantom missed
  read.

Point exemptions (one call on one line) should use an inline
``# repro: allow[rule-id] reason`` suppression instead, so the reason
travels with the code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatch
from typing import Dict, Tuple


def _posix(path: str) -> str:
    return path.replace("\\", "/")


@dataclass(frozen=True)
class LintConfig:
    """Path-level policy consulted by the engine before running a rule."""

    #: Files skipped entirely (never parsed).
    exclude: Tuple[str, ...] = ()
    #: rule-id -> path patterns where the rule is switched off.
    allow_paths: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: rule-id -> path patterns the rule is restricted to (unset = all).
    only_paths: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    def is_excluded(self, path: str) -> bool:
        posix = _posix(path)
        return any(fnmatch(posix, pattern) for pattern in self.exclude)

    def rule_applies(self, rule_id: str, path: str) -> bool:
        """True when ``rule_id`` should run against ``path``."""
        posix = _posix(path)
        only = self.only_paths.get(rule_id)
        if only is not None and not any(
            fnmatch(posix, pattern) for pattern in only
        ):
            return False
        allowed = self.allow_paths.get(rule_id, ())
        return not any(fnmatch(posix, pattern) for pattern in allowed)


#: Paths the exception-hygiene family gates: supervision, fault
#: injection, and the process-pool harness, where a swallowed error
#: turns into a silent phantom miss instead of a crash.
EXCEPTION_SCOPE: Tuple[str, ...] = (
    "*reader/supervisor.py",
    "*faults/*",
    "*core/parallel.py",
)

DEFAULT_CONFIG = LintConfig(
    exclude=("*/__pycache__/*",),
    allow_paths={
        # The conversion helpers themselves are the one place bare
        # 10**(x/10) / 10*log10(x) arithmetic is supposed to live.
        "units-bare-conversion": ("*rf/units.py",),
        # RandomStream wraps random.Random exactly once, here.
        "rng-raw-stream": ("*sim/rng.py",),
    },
    only_paths={
        "except-bare": EXCEPTION_SCOPE,
        "except-swallow": EXCEPTION_SCOPE,
    },
)
