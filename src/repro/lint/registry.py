"""The rule registry: every check self-registers at import time.

A rule is a function ``(FileContext) -> Iterable[Finding]`` plus the
metadata the CLI needs (id, family, one-line rationale). Registering by
decorator keeps adding a rule to a one-file change::

    @rule(
        "my-rule",
        family="units",
        rationale="why the convention matters in one line",
    )
    def check_my_rule(ctx: FileContext) -> Iterator[Finding]:
        ...
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from .context import FileContext
from .findings import Finding

RuleFn = Callable[[FileContext], Iterable[Finding]]


@dataclass(frozen=True)
class Rule:
    """One registered check."""

    rule_id: str
    family: str
    rationale: str
    fn: RuleFn

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return self.fn(ctx)


_REGISTRY: Dict[str, Rule] = {}


def rule(rule_id: str, family: str, rationale: str) -> Callable[[RuleFn], RuleFn]:
    """Decorator registering ``fn`` as the implementation of ``rule_id``."""

    def decorator(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate rule id {rule_id!r}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id, family=family, rationale=rationale, fn=fn
        )
        return fn

    return decorator


def _ensure_loaded() -> None:
    # Importing the rules package runs every @rule decorator.
    from . import rules  # noqa: F401


def all_rules() -> List[Rule]:
    """Every registered rule, in id order."""
    _ensure_loaded()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


def select_rules(ids: Optional[Sequence[str]]) -> List[Rule]:
    """Rules for an ``--rule`` selection (None = all).

    Raises
    ------
    KeyError
        Carrying the first unknown id, so the CLI can report the valid
        set and exit 2.
    """
    if ids is None:
        return all_rules()
    _ensure_loaded()
    selected: List[Rule] = []
    for rule_id in ids:
        if rule_id not in _REGISTRY:
            raise KeyError(rule_id)
        selected.append(_REGISTRY[rule_id])
    return selected
