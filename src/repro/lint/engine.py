"""Walks files, runs rules, applies suppressions and the allowlist.

The engine is deliberately dumb plumbing: rule selection and path
policy come in, an ordered :class:`~repro.lint.findings.LintReport`
comes out. ``analyze_source`` is the string-level entry point the test
suite uses to lint fixtures and synthesized mutants without touching
the filesystem.
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Sequence

from .config import DEFAULT_CONFIG, LintConfig
from .context import FileContext
from .findings import Finding, LintReport
from .registry import Rule, select_rules


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of .py files.

    Raises
    ------
    FileNotFoundError
        For a path that exists neither as a file nor as a directory —
        a misspelled argument should fail the run, not quietly lint
        nothing.
    """
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__"
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        found.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(found))


def analyze_context(
    ctx: FileContext,
    rules: Iterable[Rule],
    config: LintConfig,
    report: LintReport,
) -> None:
    """Run ``rules`` over one parsed file, honouring policy."""
    for rule in rules:
        if not config.rule_applies(rule.rule_id, ctx.path):
            continue
        for finding in rule.check(ctx):
            if ctx.is_suppressed(finding.rule_id, finding.line):
                report.suppressed += 1
            else:
                report.add(finding)


def analyze_source(
    path: str,
    source: str,
    rule_ids: Optional[Sequence[str]] = None,
    config: LintConfig = DEFAULT_CONFIG,
) -> LintReport:
    """Lint one in-memory source blob under a virtual ``path``."""
    report = LintReport(files_checked=1)
    rules = select_rules(rule_ids)
    try:
        ctx = FileContext.from_source(path, source)
    except SyntaxError as exc:
        report.add(_parse_error(path, exc))
        return report.finish()
    analyze_context(ctx, rules, config, report)
    return report.finish()


def run_lint(
    paths: Sequence[str],
    rule_ids: Optional[Sequence[str]] = None,
    config: LintConfig = DEFAULT_CONFIG,
) -> LintReport:
    """Lint every Python file reachable from ``paths``.

    Raises
    ------
    KeyError
        From rule selection, when ``rule_ids`` names an unknown rule.
    """
    rules = select_rules(rule_ids)
    report = LintReport()
    for path in iter_python_files(paths):
        if config.is_excluded(path):
            continue
        report.files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            ctx = FileContext.from_source(path, source)
        except SyntaxError as exc:
            report.add(_parse_error(path, exc))
            continue
        analyze_context(ctx, rules, config, report)
    return report.finish()


def _parse_error(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule_id="parse-error",
        path=path,
        line=exc.lineno or 0,
        col=(exc.offset or 1) - 1,
        message=f"file does not parse: {exc.msg}",
    )
