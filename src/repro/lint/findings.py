"""Finding and report types for the static-analysis pass.

A :class:`Finding` is one rule violation pinned to a file and line; a
:class:`LintReport` aggregates every finding from a run plus the file
count, and owns the exit-code contract (0 clean, 1 findings) that the
CLI and the CI job rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule_id)


@dataclass
class LintReport:
    """Aggregated result of one lint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    suppressed: int = 0

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings: List[Finding]) -> None:
        self.findings.extend(findings)

    def finish(self) -> "LintReport":
        """Put findings in (path, line, col, rule) order; returns self."""
        self.findings.sort(key=sort_key)
        return self

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def to_payload(self) -> Dict[str, Any]:
        return {
            "command": "lint",
            "files_checked": self.files_checked,
            "findings": [f.to_dict() for f in self.findings],
            "finding_count": len(self.findings),
            "suppressed": self.suppressed,
            "ok": not self.findings,
        }

    def render(self) -> str:
        """Human-readable view: one ``path:line:col rule message`` per
        finding, then a one-line tally."""
        lines = [
            f"{f.location()}  {f.rule_id}  {f.message}" for f in self.findings
        ]
        verdict = "clean" if not self.findings else "FAILED"
        lines.append(
            f"lint: {len(self.findings)} finding(s) in "
            f"{self.files_checked} file(s), {self.suppressed} suppressed "
            f"— {verdict}"
        )
        return "\n".join(lines)
