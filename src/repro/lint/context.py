"""Per-file analysis context shared by every rule.

One :class:`FileContext` is built per source file: the parsed AST, the
raw lines, the inline-suppression table, and an import-alias map that
lets rules resolve a call like ``_datetime.datetime.now(...)`` to the
canonical dotted name ``datetime.datetime.now`` regardless of how the
module was imported.

Suppression syntax (same line as the finding)::

    risky_call()  # repro: allow[rule-id] why this one is fine

The rule id must match exactly — a suppression silences one rule on one
line, nothing more. A reason is expected (and enforced by review, not
by the engine).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

#: ``# repro: allow[rule-id] optional reason`` — findall-friendly so one
#: comment can carry several suppressions.
SUPPRESS_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_-]+)\]")


def parse_suppressions(lines: List[str]) -> Dict[int, Set[str]]:
    """Map 1-based line number -> set of rule ids suppressed there."""
    table: Dict[int, Set[str]] = {}
    for number, line in enumerate(lines, start=1):
        ids = SUPPRESS_RE.findall(line)
        if ids:
            table[number] = set(ids)
    return table


def build_import_table(tree: ast.AST) -> Dict[str, str]:
    """Local name -> canonical dotted prefix, from the file's imports.

    ``import datetime as _dt`` maps ``_dt`` to ``datetime``;
    ``from random import random`` maps ``random`` to ``random.random``.
    Only top-of-chain names are tracked — that is all call resolution
    needs.
    """
    table: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                canonical = alias.name if alias.asname else local
                table[local] = canonical
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                # Relative imports stay project-internal; rules target
                # stdlib/numpy surfaces, so skip them.
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, path: str, source: str) -> "FileContext":
        """Parse ``source``; raises SyntaxError on unparsable input."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        return cls(
            path=path,
            source=source,
            tree=tree,
            lines=lines,
            suppressions=parse_suppressions(lines),
            imports=build_import_table(tree),
        )

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        return rule_id in self.suppressions.get(line, set())

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None.

        The chain's base name must be present in the file's import
        table — an attribute chain hanging off a local object (for
        example ``self._rng.random``) resolves to nothing, which is
        what keeps method calls from false-positiving module-level
        bans.
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        canonical = self.imports.get(current.id)
        if canonical is None:
            return None
        parts.append(canonical)
        return ".".join(reversed(parts))

    def call_name(self, call: ast.Call) -> Optional[str]:
        """Canonical dotted name of a call's target, or None."""
        return self.dotted_name(call.func)


def nested_function_names(tree: ast.AST) -> Set[str]:
    """Names of functions defined inside other functions.

    Used by the pickle-safety rule: a Name argument that refers to one
    of these cannot cross a process boundary.
    """
    nested: Set[str] = set()

    class _Visitor(ast.NodeVisitor):
        def __init__(self) -> None:
            self.depth = 0

        def _visit_fn(self, node: ast.AST, name: str) -> None:
            if self.depth > 0:
                nested.add(name)
            self.depth += 1
            self.generic_visit(node)
            self.depth -= 1

        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            self._visit_fn(node, node.name)

        def visit_AsyncFunctionDef(
            self, node: ast.AsyncFunctionDef
        ) -> None:
            self._visit_fn(node, node.name)

        def visit_ClassDef(self, node: ast.ClassDef) -> None:
            # Methods are module-reachable through their class; do not
            # count the class body as function nesting.
            self.generic_visit(node)

    _Visitor().visit(tree)
    return nested


def constant_value(node: ast.AST) -> Optional[float]:
    """Numeric value of a literal, unwrapping a unary minus."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = constant_value(node.operand)
        return None if inner is None else -inner
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ):
        return float(node.value)
    return None
