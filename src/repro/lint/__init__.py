"""Domain-aware static analysis for the simulator's conventions.

``python -m repro lint [PATHS]`` enforces, at the AST level, the
conventions the runtime validation suite can only probe statistically:

* **units** — dB/linear domain discipline (SI internally, dB at the
  edges, conversions through ``rf/units.py``);
* **determinism** — no wall clocks, global RNG, or fresh UUIDs in code
  that feeds golden traces;
* **rng-discipline** — raw generators constructed only in
  ``sim/rng.py``;
* **pickle-safety** — trial callables must survive the process-pool
  hop;
* **exception-hygiene** — no swallowed errors on phantom-miss paths.

Findings can be silenced per line with
``# repro: allow[rule-id] reason``; structural exemptions live in
:data:`repro.lint.config.DEFAULT_CONFIG`. See ``docs/lint.md``.
"""

from .config import DEFAULT_CONFIG, LintConfig
from .context import FileContext
from .engine import analyze_source, iter_python_files, run_lint
from .findings import Finding, LintReport
from .registry import Rule, all_rules, rule, rule_ids, select_rules

__all__ = [
    "DEFAULT_CONFIG",
    "LintConfig",
    "FileContext",
    "analyze_source",
    "iter_python_files",
    "run_lint",
    "Finding",
    "LintReport",
    "Rule",
    "all_rules",
    "rule",
    "rule_ids",
    "select_rules",
]
