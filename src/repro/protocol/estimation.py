"""Tag-population estimation from frame statistics.

Anti-collision performance hinges on knowing how many tags are
contending. Two classic estimators are provided:

* **Vogt's estimators** (lower bound and chi-square-style minimum
  distance) from frame (empty, success, collision) counts;
* a **probabilistic zero-slot estimator** in the spirit of Kodialam &
  Nandagopal (MOBICOM'06): invert the expected fraction of empty slots
  of a frame of known size to estimate the population without reading
  any tag — fast cardinality estimation.
"""

from __future__ import annotations

import math
from typing import Sequence, Tuple


def vogt_lower_bound(success: int, collision: int) -> float:
    """Vogt's lower bound: every collision hides at least two tags."""
    if success < 0 or collision < 0:
        raise ValueError("slot counts must be non-negative")
    return float(success + 2 * collision)


def _expected_outcome(n: float, frame: int) -> Tuple[float, float, float]:
    """Expected (empty, success, collision) counts for ``n`` tags in ``frame`` slots.

    Uses the binomial occupancy model: a slot is empty w.p.
    ``(1 - 1/N)^n`` and a success w.p. ``n/N (1 - 1/N)^(n-1)``.
    """
    if frame < 1:
        raise ValueError(f"frame must be >= 1, got {frame!r}")
    if n < 0:
        raise ValueError(f"tag count must be non-negative, got {n!r}")
    p_empty = (1.0 - 1.0 / frame) ** n
    if n >= 1:
        p_success = (n / frame) * (1.0 - 1.0 / frame) ** (n - 1.0)
    else:
        p_success = 0.0
    p_collision = max(0.0, 1.0 - p_empty - p_success)
    return frame * p_empty, frame * p_success, frame * p_collision


def vogt_estimate(empty: int, success: int, collision: int) -> float:
    """Vogt's minimum-distance estimate of the contending population.

    Scans candidate populations and returns the one whose expected
    (empty, success, collision) vector is closest (L2) to the observed
    one; falls back to the lower bound when the frame saw nothing.
    """
    if min(empty, success, collision) < 0:
        raise ValueError("slot counts must be non-negative")
    frame = empty + success + collision
    if frame == 0:
        return 0.0
    observed = (float(empty), float(success), float(collision))
    lower = vogt_lower_bound(success, collision)
    if collision == 0:
        return float(success)
    best_n = lower
    best_dist = float("inf")
    # Candidate range: the lower bound up to a generous multiple of the
    # frame (beyond ~4x frame the expected-vector distance is monotone).
    upper = max(int(lower) + 1, 4 * frame)
    for n in range(max(int(lower), 1), upper + 1):
        expected = _expected_outcome(float(n), frame)
        dist = sum((o - e) ** 2 for o, e in zip(observed, expected))
        if dist < best_dist:
            best_dist = dist
            best_n = float(n)
    return best_n


def zero_slot_estimate(frame_size: int, empty_slots: int) -> float:
    """Cardinality estimate from the empty-slot fraction alone.

    Kodialam-style: ``E[empty fraction] = (1 - 1/N)^n``, so
    ``n = ln(z) / ln(1 - 1/N)`` where ``z`` is the observed empty
    fraction. Needs no tag decoding at all, which is what makes these
    estimators "fast and reliable" for monitoring applications.

    Returns ``inf`` when no slot was empty (population saturates the
    frame) and ``0`` when all were.
    """
    if frame_size < 2:
        raise ValueError(f"frame size must be >= 2, got {frame_size!r}")
    if not 0 <= empty_slots <= frame_size:
        raise ValueError(
            f"empty slots {empty_slots} out of range 0..{frame_size}"
        )
    if empty_slots == frame_size:
        return 0.0
    if empty_slots == 0:
        return float("inf")
    z = empty_slots / frame_size
    return math.log(z) / math.log(1.0 - 1.0 / frame_size)


def averaged_zero_slot_estimate(
    frame_size: int, empty_counts: Sequence[int]
) -> float:
    """Average the zero-slot estimator over repeated probe frames.

    Repeating small probe frames and averaging tightens the variance
    roughly as 1/sqrt(trials), the core trick of probabilistic RFID
    cardinality estimation.
    """
    if not empty_counts:
        raise ValueError("need at least one probe frame")
    finite = [
        zero_slot_estimate(frame_size, e)
        for e in empty_counts
        if e > 0
    ]
    if not finite:
        return float("inf")
    return sum(finite) / len(finite)


def collision_fraction(empty: int, success: int, collision: int) -> float:
    """Observed collision fraction of a frame (0 for an empty frame)."""
    total = empty + success + collision
    if total == 0:
        return 0.0
    return collision / total
