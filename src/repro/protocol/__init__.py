"""EPC Gen 2 protocol substrate: EPC codes, CRCs, inventory, baselines."""

from .aloha import (
    ALLOWED_FRAME_SIZES,
    FrameOutcome,
    choose_frame_size,
    inventory_until_aloha,
    run_aloha_frame,
)
from .crc import (
    bits_to_bytes,
    bits_to_int,
    bytes_to_bits,
    crc5,
    crc16,
    crc16_bytes,
    int_to_bits,
    verify_crc16,
)
from .dense_reader import (
    CO_CHANNEL_DWELL_PROBABILITY,
    DRM_ISOLATION_DB,
    NON_DRM_CHANNEL_ISOLATION_DB,
    ReaderRadio,
    carrier_coupling_db,
    interference_at_receiver_dbm,
    tdma_schedule,
)
from .epc import EpcError, EpcFactory, Sgtin96
from .estimation import (
    averaged_zero_slot_estimate,
    collision_fraction,
    vogt_estimate,
    vogt_lower_bound,
    zero_slot_estimate,
)
from .gen2 import (
    SILENT,
    ChannelFn,
    InventoryResult,
    InventorySession,
    QAlgorithm,
    SlotObserver,
    TagChannel,
    inventory_until,
    run_inventory_round,
)
from .timing import DEFAULT_TIMING, PAPER_SECONDS_PER_TAG, Gen2Timing
from .tree import TreeWalkStats, inventory_tree

from .commands import (
    AckCommand,
    CommandError,
    DivideRatio,
    QueryAdjustCommand,
    QueryCommand,
    QueryRepCommand,
    SelectCommand,
    Session,
    TagEncoding,
    Target,
    decode_command,
)
from .select import (
    EPC_BANK_OFFSET_BITS,
    SelectError,
    SelectionState,
    mask_for_prefix_hex,
    tag_matches,
)

from .tag_state import Gen2TagMachine, TagState, TagStateError

from .memory import LockState, MemoryBank, MemoryError, TagMemory

__all__ = [
    "LockState",
    "MemoryBank",
    "MemoryError",
    "TagMemory",

    "Gen2TagMachine",
    "TagState",
    "TagStateError",

    "AckCommand",
    "CommandError",
    "DivideRatio",
    "QueryAdjustCommand",
    "QueryCommand",
    "QueryRepCommand",
    "SelectCommand",
    "Session",
    "TagEncoding",
    "Target",
    "decode_command",
    "EPC_BANK_OFFSET_BITS",
    "SelectError",
    "SelectionState",
    "mask_for_prefix_hex",
    "tag_matches",

    "ALLOWED_FRAME_SIZES",
    "FrameOutcome",
    "choose_frame_size",
    "inventory_until_aloha",
    "run_aloha_frame",
    "bits_to_bytes",
    "bits_to_int",
    "bytes_to_bits",
    "crc5",
    "crc16",
    "crc16_bytes",
    "int_to_bits",
    "verify_crc16",
    "CO_CHANNEL_DWELL_PROBABILITY",
    "DRM_ISOLATION_DB",
    "NON_DRM_CHANNEL_ISOLATION_DB",
    "ReaderRadio",
    "carrier_coupling_db",
    "interference_at_receiver_dbm",
    "tdma_schedule",
    "EpcError",
    "EpcFactory",
    "Sgtin96",
    "averaged_zero_slot_estimate",
    "collision_fraction",
    "vogt_estimate",
    "vogt_lower_bound",
    "zero_slot_estimate",
    "SILENT",
    "ChannelFn",
    "InventoryResult",
    "InventorySession",
    "QAlgorithm",
    "SlotObserver",
    "TagChannel",
    "inventory_until",
    "run_inventory_round",
    "DEFAULT_TIMING",
    "PAPER_SECONDS_PER_TAG",
    "Gen2Timing",
    "TreeWalkStats",
    "inventory_tree",
]
