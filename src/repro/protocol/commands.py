"""Gen 2 reader-command frame encoding and decoding.

The inventory simulator (:mod:`repro.protocol.gen2`) works at the
slot-outcome level; this module provides the actual bit-level frames so
the library can also serve as a protocol reference: Query (with CRC-5),
QueryRep, QueryAdjust, ACK, NAK, and Select (with CRC-16), exactly as
EPCglobal Class-1 Gen-2 lays them out.

All encoders return MSB-first bit lists; decoders validate structure
and checksums and raise :class:`CommandError` on any malformation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .crc import bits_to_int, crc5, crc16, int_to_bits


class CommandError(ValueError):
    """Raised when a frame cannot be encoded or decoded."""


class Session(enum.IntEnum):
    """Gen 2 inventory sessions."""

    S0 = 0
    S1 = 1
    S2 = 2
    S3 = 3


class Target(enum.IntEnum):
    """Inventoried-flag target of a Query."""

    A = 0
    B = 1


class DivideRatio(enum.IntEnum):
    """Query DR field: BLF = DR / TRcal."""

    DR_8 = 0
    DR_64_3 = 1


class TagEncoding(enum.IntEnum):
    """Query M field: tag-to-reader modulation."""

    FM0 = 0
    MILLER_2 = 1
    MILLER_4 = 2
    MILLER_8 = 3


#: 4-bit command codes (QueryRep/ACK use 2 bits, Query uses 4 bits,
#: Select 4 bits, NAK 8 bits) per the Gen 2 spec.
QUERY_CODE = (1, 0, 0, 0)
QUERY_REP_CODE = (0, 0)
QUERY_ADJUST_CODE = (1, 0, 0, 1)
ACK_CODE = (0, 1)
NAK_CODE = (1, 1, 0, 0, 0, 0, 0, 0)
SELECT_CODE = (1, 0, 1, 0)


@dataclass(frozen=True)
class QueryCommand:
    """A Gen 2 Query: opens an inventory round.

    Fields follow the spec's order; ``q`` sets the frame to ``2^q``
    slots.
    """

    dr: DivideRatio = DivideRatio.DR_8
    m: TagEncoding = TagEncoding.MILLER_4
    trext: bool = False
    sel: int = 0
    session: Session = Session.S1
    target: Target = Target.A
    q: int = 4

    def __post_init__(self) -> None:
        if not 0 <= self.q <= 15:
            raise CommandError(f"Q must be 0-15, got {self.q!r}")
        if not 0 <= self.sel <= 3:
            raise CommandError(f"Sel must be 0-3, got {self.sel!r}")

    def to_bits(self) -> List[int]:
        """22-bit frame: 4 code + 13 payload + 5 CRC-5."""
        bits: List[int] = list(QUERY_CODE)
        bits += int_to_bits(int(self.dr), 1)
        bits += int_to_bits(int(self.m), 2)
        bits += int_to_bits(1 if self.trext else 0, 1)
        bits += int_to_bits(self.sel, 2)
        bits += int_to_bits(int(self.session), 2)
        bits += int_to_bits(int(self.target), 1)
        bits += int_to_bits(self.q, 4)
        bits += int_to_bits(crc5(bits), 5)
        assert len(bits) == 22
        return bits

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "QueryCommand":
        """Decode and checksum-verify a Query frame."""
        if len(bits) != 22:
            raise CommandError(f"Query frame must be 22 bits, got {len(bits)}")
        if tuple(bits[0:4]) != QUERY_CODE:
            raise CommandError("not a Query frame (bad command code)")
        payload, crc_bits = list(bits[:17]), bits[17:]
        if crc5(payload) != bits_to_int(crc_bits):
            raise CommandError("Query CRC-5 mismatch")
        return QueryCommand(
            dr=DivideRatio(bits_to_int(bits[4:5])),
            m=TagEncoding(bits_to_int(bits[5:7])),
            trext=bool(bits[7]),
            sel=bits_to_int(bits[8:10]),
            session=Session(bits_to_int(bits[10:12])),
            target=Target(bits[12]),
            q=bits_to_int(bits[13:17]),
        )


@dataclass(frozen=True)
class QueryRepCommand:
    """QueryRep: advance to the next slot of the current session."""

    session: Session = Session.S1

    def to_bits(self) -> List[int]:
        return list(QUERY_REP_CODE) + int_to_bits(int(self.session), 2)

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "QueryRepCommand":
        if len(bits) != 4 or tuple(bits[0:2]) != QUERY_REP_CODE:
            raise CommandError("not a QueryRep frame")
        return QueryRepCommand(session=Session(bits_to_int(bits[2:4])))


@dataclass(frozen=True)
class QueryAdjustCommand:
    """QueryAdjust: nudge Q up/down/unchanged mid-round."""

    session: Session = Session.S1
    updn: int = 0  # +1 (110b), 0 (000b), -1 (011b) per spec

    _UPDN_BITS = {1: (1, 1, 0), 0: (0, 0, 0), -1: (0, 1, 1)}

    def __post_init__(self) -> None:
        if self.updn not in self._UPDN_BITS:
            raise CommandError(f"UpDn must be -1, 0 or +1, got {self.updn!r}")

    def to_bits(self) -> List[int]:
        return (
            list(QUERY_ADJUST_CODE)
            + int_to_bits(int(self.session), 2)
            + list(self._UPDN_BITS[self.updn])
        )

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "QueryAdjustCommand":
        if len(bits) != 9 or tuple(bits[0:4]) != QUERY_ADJUST_CODE:
            raise CommandError("not a QueryAdjust frame")
        updn_bits = tuple(bits[6:9])
        for updn, pattern in QueryAdjustCommand._UPDN_BITS.items():
            if updn_bits == pattern:
                return QueryAdjustCommand(
                    session=Session(bits_to_int(bits[4:6])), updn=updn
                )
        raise CommandError(f"invalid UpDn bits {updn_bits}")


@dataclass(frozen=True)
class AckCommand:
    """ACK: acknowledge an RN16 so the tag backscatters its EPC."""

    rn16: int

    def __post_init__(self) -> None:
        if not 0 <= self.rn16 <= 0xFFFF:
            raise CommandError(f"RN16 out of range: {self.rn16!r}")

    def to_bits(self) -> List[int]:
        return list(ACK_CODE) + int_to_bits(self.rn16, 16)

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "AckCommand":
        if len(bits) != 18 or tuple(bits[0:2]) != ACK_CODE:
            raise CommandError("not an ACK frame")
        return AckCommand(rn16=bits_to_int(bits[2:18]))


@dataclass(frozen=True)
class SelectCommand:
    """Select: pre-filter the tag population by a memory mask.

    Readers use Select to target a subpopulation (e.g. one pallet's
    company prefix) before inventorying — the standard way to keep
    airtime off irrelevant ambient tags.
    """

    target: int = 4      # 100b = SL flag; 0-3 address session flags
    action: int = 0
    mem_bank: int = 1    # EPC bank
    pointer: int = 0x20  # bit address (skip CRC+PC: EPC starts at 0x20)
    mask: Tuple[int, ...] = ()
    truncate: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.target <= 7:
            raise CommandError(f"target must be 0-7, got {self.target!r}")
        if not 0 <= self.action <= 7:
            raise CommandError(f"action must be 0-7, got {self.action!r}")
        if not 0 <= self.mem_bank <= 3:
            raise CommandError(f"mem bank must be 0-3, got {self.mem_bank!r}")
        if not 0 <= self.pointer <= 0xFF:
            raise CommandError(
                f"pointer must fit in 8 bits (EBV-8), got {self.pointer!r}"
            )
        if len(self.mask) > 255:
            raise CommandError("mask longer than 255 bits")
        for bit in self.mask:
            if bit not in (0, 1):
                raise CommandError(f"mask bits must be 0/1, got {bit!r}")

    def to_bits(self) -> List[int]:
        bits: List[int] = list(SELECT_CODE)
        bits += int_to_bits(self.target, 3)
        bits += int_to_bits(self.action, 3)
        bits += int_to_bits(self.mem_bank, 2)
        bits += int_to_bits(self.pointer, 8)
        bits += int_to_bits(len(self.mask), 8)
        bits += list(self.mask)
        bits += int_to_bits(1 if self.truncate else 0, 1)
        bits += int_to_bits(crc16(bits), 16)
        return bits

    @staticmethod
    def from_bits(bits: Sequence[int]) -> "SelectCommand":
        if len(bits) < 4 + 3 + 3 + 2 + 8 + 8 + 1 + 16:
            raise CommandError("Select frame too short")
        if tuple(bits[0:4]) != SELECT_CODE:
            raise CommandError("not a Select frame")
        mask_length = bits_to_int(bits[20:28])
        expected = 4 + 3 + 3 + 2 + 8 + 8 + mask_length + 1 + 16
        if len(bits) != expected:
            raise CommandError(
                f"Select frame length {len(bits)} != expected {expected}"
            )
        payload = list(bits[:-16])
        if crc16(payload) != bits_to_int(bits[-16:]):
            raise CommandError("Select CRC-16 mismatch")
        mask = tuple(bits[28 : 28 + mask_length])
        return SelectCommand(
            target=bits_to_int(bits[4:7]),
            action=bits_to_int(bits[7:10]),
            mem_bank=bits_to_int(bits[10:12]),
            pointer=bits_to_int(bits[12:20]),
            mask=mask,
            truncate=bool(bits[28 + mask_length]),
        )


def decode_command(bits: Sequence[int]):
    """Dispatch a frame to the right decoder by its command code.

    Returns the decoded command object.

    Raises
    ------
    CommandError
        If no known command matches.
    """
    prefix2 = tuple(bits[0:2])
    prefix4 = tuple(bits[0:4])
    prefix8 = tuple(bits[0:8])
    if prefix8 == NAK_CODE and len(bits) == 8:
        return "NAK"
    if prefix4 == QUERY_CODE:
        return QueryCommand.from_bits(bits)
    if prefix4 == QUERY_ADJUST_CODE:
        return QueryAdjustCommand.from_bits(bits)
    if prefix4 == SELECT_CODE:
        return SelectCommand.from_bits(bits)
    if prefix2 == QUERY_REP_CODE:
        return QueryRepCommand.from_bits(bits)
    if prefix2 == ACK_CODE:
        return AckCommand.from_bits(bits)
    raise CommandError(f"unknown command prefix {prefix4}")
