"""Gen 2 tag memory: the four banks, word addressing, and locks.

Completes the tag-side substrate next to the state machine: Reserved
(kill/access passwords), EPC (CRC + PC + EPC), TID (chip identity) and
User banks, with word-granular Read/Write and the Lock command's
pwd-write / permalock semantics. The paper's tags carry "a unique 96
bit identification code and some asset related data" — the asset data
lives in the User bank modelled here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .crc import crc16_bytes


class MemoryBank(enum.IntEnum):
    RESERVED = 0
    EPC = 1
    TID = 2
    USER = 3


class MemoryError(ValueError):
    """Raised for invalid addresses or lock violations."""


class LockState(enum.Enum):
    """Per-bank lock states from the Gen 2 Lock command."""

    UNLOCKED = "unlocked"
    PWD_WRITE = "pwd-write"          # writable only in Secured state
    PERMALOCKED = "permalocked"      # never writable again
    PERMAUNLOCKED = "permaunlocked"  # never lockable again


@dataclass
class TagMemory:
    """Word-addressed (16-bit) tag memory with per-bank locks.

    Sizes follow a typical 2006-era chip: 4 words reserved, 8 words EPC
    bank (CRC + PC + 96-bit EPC), 2 words TID, 8 words user memory.
    """

    epc_hex: str
    kill_password: int = 0
    access_password: int = 0
    tid: int = 0xE200_1234
    user_words: int = 8
    _banks: Dict[MemoryBank, List[int]] = field(default_factory=dict)
    _locks: Dict[MemoryBank, LockState] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if len(self.epc_hex) != 24:
            raise MemoryError(
                f"EPC must be 96 bits (24 hex digits), got {len(self.epc_hex)}"
            )
        epc_bytes = bytes.fromhex(self.epc_hex)
        # StoredPC: EPC length in words (6) in the top 5 bits.
        stored_pc = (6 & 0x1F) << 11
        stored_crc = crc16_bytes(stored_pc.to_bytes(2, "big") + epc_bytes)
        epc_words = [
            int.from_bytes(epc_bytes[i : i + 2], "big") for i in range(0, 12, 2)
        ]
        self._banks = {
            MemoryBank.RESERVED: [
                (self.kill_password >> 16) & 0xFFFF,
                self.kill_password & 0xFFFF,
                (self.access_password >> 16) & 0xFFFF,
                self.access_password & 0xFFFF,
            ],
            MemoryBank.EPC: [stored_crc, stored_pc] + epc_words,
            MemoryBank.TID: [
                (self.tid >> 16) & 0xFFFF,
                self.tid & 0xFFFF,
            ],
            MemoryBank.USER: [0] * self.user_words,
        }
        self._locks = {bank: LockState.UNLOCKED for bank in MemoryBank}

    # -- read/write ---------------------------------------------------------

    def read_words(
        self, bank: MemoryBank, word_ptr: int, count: int
    ) -> List[int]:
        """Read ``count`` words starting at ``word_ptr``.

        Raises
        ------
        MemoryError
            On out-of-bounds access (tags reply with an error code;
            we surface it as an exception).
        """
        if count < 1:
            raise MemoryError(f"word count must be >= 1, got {count!r}")
        words = self._banks[bank]
        if word_ptr < 0 or word_ptr + count > len(words):
            raise MemoryError(
                f"read beyond bank {bank.name}: ptr={word_ptr} count={count} "
                f"size={len(words)}"
            )
        return list(words[word_ptr : word_ptr + count])

    def write_word(
        self,
        bank: MemoryBank,
        word_ptr: int,
        value: int,
        secured: bool = False,
    ) -> None:
        """Write one word, honouring the bank's lock state.

        ``secured`` indicates the interrogator holds the Secured state
        (knows the access password).
        """
        if not 0 <= value <= 0xFFFF:
            raise MemoryError(f"word value out of range: {value!r}")
        lock = self._locks[bank]
        if lock is LockState.PERMALOCKED:
            raise MemoryError(f"bank {bank.name} is permalocked")
        if lock is LockState.PWD_WRITE and not secured:
            raise MemoryError(
                f"bank {bank.name} is pwd-write locked; Secured state required"
            )
        words = self._banks[bank]
        if word_ptr < 0 or word_ptr >= len(words):
            raise MemoryError(
                f"write beyond bank {bank.name}: ptr={word_ptr} "
                f"size={len(words)}"
            )
        words[word_ptr] = value

    # -- locks ----------------------------------------------------------------

    def lock(self, bank: MemoryBank, state: LockState, secured: bool) -> None:
        """Apply a Lock action to a bank (requires Secured state)."""
        if not secured:
            raise MemoryError("Lock requires the Secured state")
        current = self._locks[bank]
        if current is LockState.PERMALOCKED:
            raise MemoryError(f"bank {bank.name} is permalocked")
        if current is LockState.PERMAUNLOCKED and state in (
            LockState.PWD_WRITE,
            LockState.PERMALOCKED,
        ):
            raise MemoryError(f"bank {bank.name} is permaunlocked")
        self._locks[bank] = state

    def lock_state(self, bank: MemoryBank) -> LockState:
        return self._locks[bank]

    # -- convenience ------------------------------------------------------------

    @property
    def stored_epc_hex(self) -> str:
        """The EPC as currently stored (writable tags can be re-encoded)."""
        words = self._banks[MemoryBank.EPC][2:8]
        return "".join(f"{w:04X}" for w in words)

    def reencode(self, new_epc_hex: str, secured: bool = False) -> None:
        """Rewrite the EPC words and refresh the stored CRC."""
        if len(new_epc_hex) != 24:
            raise MemoryError("new EPC must be 24 hex digits")
        try:
            new_bytes = bytes.fromhex(new_epc_hex)
        except ValueError:
            raise MemoryError(f"invalid EPC hex {new_epc_hex!r}") from None
        for i in range(6):
            word = int.from_bytes(new_bytes[2 * i : 2 * i + 2], "big")
            self.write_word(MemoryBank.EPC, 2 + i, word, secured=secured)
        stored_pc = self._banks[MemoryBank.EPC][1]
        self._banks[MemoryBank.EPC][0] = crc16_bytes(
            stored_pc.to_bytes(2, "big") + new_bytes
        )

    def write_user_data(
        self, data: bytes, secured: bool = False
    ) -> None:
        """Store asset-related data in the User bank (zero-padded)."""
        if len(data) > 2 * self.user_words:
            raise MemoryError(
                f"user data of {len(data)} bytes exceeds "
                f"{2 * self.user_words}-byte bank"
            )
        padded = data + b"\x00" * (2 * self.user_words - len(data))
        for i in range(self.user_words):
            word = int.from_bytes(padded[2 * i : 2 * i + 2], "big")
            self.write_word(MemoryBank.USER, i, word, secured=secured)

    def read_user_data(self) -> bytes:
        """The User bank contents as bytes."""
        return b"".join(
            w.to_bytes(2, "big") for w in self._banks[MemoryBank.USER]
        )
