"""Fixed-frame framed-slotted-ALOHA baseline (Vogt, 2002).

Before Gen 2's adaptive Q, readers ran framed-slotted ALOHA with a
frame size chosen per round. Vogt's scheme estimates the tag population
from the previous frame's (empty, success, collision) counts and picks
the next frame size to maximise throughput (frame size ~ population).

This baseline exists for two reasons: the paper explicitly scopes out
"better collision control algorithms" as an orthogonal axis — having
both protocols lets us quantify how much of the measured unreliability
is protocol-independent — and it is the reference point for the
population-estimation module.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.events import SlotOutcome
from ..sim.rng import RandomStream
from .estimation import vogt_estimate
from .gen2 import ChannelFn, InventoryResult
from .timing import DEFAULT_TIMING, Gen2Timing

#: Frame sizes Vogt's scheme may select (powers of two, hardware-friendly).
ALLOWED_FRAME_SIZES = (16, 32, 64, 128, 256)


@dataclass
class FrameOutcome:
    """Counts observed in one ALOHA frame."""

    empty: int
    success: int
    collision: int

    @property
    def slots(self) -> int:
        return self.empty + self.success + self.collision


def choose_frame_size(estimated_tags: float) -> int:
    """Smallest allowed frame size >= the estimated backlog.

    Throughput of slotted ALOHA peaks when frame size equals the number
    of contenders; rounding up costs little (extra empties are cheap)
    while rounding down costs collisions (expensive slots).
    """
    if estimated_tags < 0:
        raise ValueError(f"estimate must be non-negative, got {estimated_tags!r}")
    for size in ALLOWED_FRAME_SIZES:
        if size >= estimated_tags:
            return size
    return ALLOWED_FRAME_SIZES[-1]


def run_aloha_frame(
    population: Sequence[str],
    channel: ChannelFn,
    rng: RandomStream,
    frame_size: int,
    already_read: Optional[set] = None,
    timing: Gen2Timing = DEFAULT_TIMING,
    start_time: float = 0.0,
) -> InventoryResult:
    """Run one fixed-size ALOHA frame over the not-yet-read population."""
    if frame_size < 1:
        raise ValueError(f"frame size must be >= 1, got {frame_size!r}")
    read_set = already_read if already_read is not None else set()
    result = InventoryResult()
    result.rounds = 1
    elapsed = timing.query_s

    contenders: Dict[str, float] = {}
    for epc in population:
        if epc in read_set:
            continue
        state = channel(epc)
        if state.energized:
            contenders[epc] = state.reply_decode_p

    counters = {epc: rng.randint(0, frame_size - 1) for epc in contenders}
    for slot_index in range(frame_size):
        responders = [e for e, c in counters.items() if c == slot_index]
        slot_time = start_time + elapsed
        if not responders:
            result.slots.append(SlotOutcome(slot_time, slot_index, 0))
            elapsed += timing.empty_slot_s
        elif len(responders) == 1:
            epc = responders[0]
            decode_p = contenders[epc]
            if rng.bernoulli(decode_p) and rng.bernoulli(decode_p):
                result.slots.append(
                    SlotOutcome(slot_time, slot_index, 1, epc=epc)
                )
                result.read_epcs.append(epc)
                result.read_times[epc] = slot_time
                read_set.add(epc)
                elapsed += timing.success_slot_s
            else:
                result.slots.append(SlotOutcome(slot_time, slot_index, 1))
                elapsed += timing.collision_slot_s
        else:
            result.slots.append(
                SlotOutcome(slot_time, slot_index, len(responders))
            )
            elapsed += timing.collision_slot_s
    result.duration_s = elapsed
    return result


def inventory_until_aloha(
    population: Sequence[str],
    channel: ChannelFn,
    rng: RandomStream,
    time_budget_s: float,
    initial_frame_size: int = 16,
    timing: Gen2Timing = DEFAULT_TIMING,
    start_time: float = 0.0,
) -> InventoryResult:
    """Vogt-adaptive framed ALOHA until the time budget is spent.

    Mirrors :func:`repro.protocol.gen2.inventory_until` so the two
    protocols are drop-in comparable in the benchmarks.
    """
    if time_budget_s < 0.0:
        raise ValueError(f"time budget must be non-negative, got {time_budget_s!r}")
    total = InventoryResult()
    read_set: set = set()
    frame_size = choose_frame_size(initial_frame_size)
    elapsed = 0.0
    while elapsed < time_budget_s:
        frame = run_aloha_frame(
            population,
            channel,
            rng,
            frame_size,
            already_read=read_set,
            timing=timing,
            start_time=start_time + elapsed,
        )
        total.read_epcs.extend(frame.read_epcs)
        total.read_times.update(frame.read_times)
        total.slots.extend(frame.slots)
        total.rounds += frame.rounds
        elapsed += frame.duration_s
        if len(read_set) >= len(population):
            break
        outcome = FrameOutcome(
            empty=sum(1 for s in frame.slots if s.kind == "empty"),
            success=sum(1 for s in frame.slots if s.kind == "success"),
            collision=sum(1 for s in frame.slots if s.kind == "collision"),
        )
        backlog = vogt_estimate(outcome.empty, outcome.success, outcome.collision)
        frame_size = choose_frame_size(max(backlog, 1.0))
    total.duration_s = min(elapsed, time_budget_s)
    return total
