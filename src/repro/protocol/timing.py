"""EPC Gen 2 air-interface timing.

The paper's operational rule of thumb — "around 0.02 sec per tag" —
falls straight out of the Gen 2 link timing: with a 25 us Tari, FM0 at
a 256 kHz backscatter link frequency, a successful singulation
(Query/QueryRep + RN16 + ACK + PC/EPC/CRC16) takes on the order of a
couple of milliseconds of airtime, and with collision overhead, antenna
dwell structure and mandated quiet times the effective throughput lands
near 50-100 tags/s. This module computes those durations from first
principles so the protocol simulator charges realistic time per slot.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Gen2Timing:
    """Durations of Gen 2 air-interface primitives.

    Parameters
    ----------
    tari_s:
        Reader data-0 symbol duration. Gen 2 allows 6.25/12.5/25 us;
        slower Tari (25 us) is typical for conveyor portals because it
        is the most interference-robust.
    blf_hz:
        Backscatter link frequency chosen by the reader's Query.
    tag_encoding_symbols_per_bit:
        1 for FM0, 2/4/8 for Miller subcarrier modes.
    """

    tari_s: float = 25e-6
    blf_hz: float = 256e3
    tag_encoding_symbols_per_bit: int = 1

    def __post_init__(self) -> None:
        if self.tari_s <= 0:
            raise ValueError(f"Tari must be positive, got {self.tari_s!r}")
        if self.blf_hz <= 0:
            raise ValueError(f"BLF must be positive, got {self.blf_hz!r}")
        if self.tag_encoding_symbols_per_bit not in (1, 2, 4, 8):
            raise ValueError(
                "tag encoding must be FM0 (1) or Miller 2/4/8, got "
                f"{self.tag_encoding_symbols_per_bit!r}"
            )

    # --- elementary durations -------------------------------------------

    @property
    def reader_bit_s(self) -> float:
        """Average reader->tag bit duration (data-1 is 1.5-2x Tari; use 1.75)."""
        return self.tari_s * 1.375  # mean of data-0 (1.0) and data-1 (1.75)

    @property
    def tag_bit_s(self) -> float:
        """Tag->reader bit duration at the configured BLF and encoding."""
        return self.tag_encoding_symbols_per_bit / self.blf_hz

    @property
    def t1_s(self) -> float:
        """Reader-command to tag-response turnaround (max of RTcal-based bound)."""
        return max(10.0 * self.tag_bit_s, 25e-6)

    @property
    def t2_s(self) -> float:
        """Tag-response to next reader-command gap."""
        return 8.0 * self.tag_bit_s

    # --- command/reply frame durations ----------------------------------

    def reader_command_s(self, bits: int) -> float:
        """Airtime for a reader command of ``bits`` payload bits plus preamble."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits!r}")
        preamble = 12.5 * self.tari_s
        return preamble + bits * self.reader_bit_s

    def tag_reply_s(self, bits: int) -> float:
        """Airtime for a tag backscatter reply of ``bits`` bits plus preamble."""
        if bits < 0:
            raise ValueError(f"bits must be non-negative, got {bits!r}")
        preamble_bits = 6 if self.tag_encoding_symbols_per_bit == 1 else 10
        return (bits + preamble_bits) * self.tag_bit_s

    @property
    def query_s(self) -> float:
        """Query command: 22 bits incl. CRC-5."""
        return self.reader_command_s(22)

    @property
    def query_rep_s(self) -> float:
        """QueryRep: 4 bits."""
        return self.reader_command_s(4)

    @property
    def ack_s(self) -> float:
        """ACK: 18 bits."""
        return self.reader_command_s(18)

    @property
    def rn16_s(self) -> float:
        """Tag RN16 reply: 16 bits."""
        return self.tag_reply_s(16)

    @property
    def epc_reply_s(self) -> float:
        """Tag PC+EPC+CRC16 reply: 16 + 96 + 16 = 128 bits."""
        return self.tag_reply_s(128)

    # --- slot durations ---------------------------------------------------

    @property
    def empty_slot_s(self) -> float:
        """QueryRep followed by silence (T1 + T3 timeout)."""
        return self.query_rep_s + self.t1_s + 3.0 * self.tag_bit_s

    @property
    def collision_slot_s(self) -> float:
        """QueryRep + garbled RN16: the reader must wait out the RN16."""
        return self.query_rep_s + self.t1_s + self.rn16_s + self.t2_s

    @property
    def success_slot_s(self) -> float:
        """Full singulation: QueryRep, RN16, ACK, PC/EPC/CRC reply."""
        return (
            self.query_rep_s
            + self.t1_s
            + self.rn16_s
            + self.t2_s
            + self.ack_s
            + self.t1_s
            + self.epc_reply_s
            + self.t2_s
        )

    def round_duration_s(self, empty: int, collisions: int, successes: int) -> float:
        """Total airtime of a round given its slot-outcome counts."""
        if min(empty, collisions, successes) < 0:
            raise ValueError("slot counts must be non-negative")
        return (
            self.query_s
            + empty * self.empty_slot_s
            + collisions * self.collision_slot_s
            + successes * self.success_slot_s
        )

    def effective_read_rate_tags_per_s(self, expected_efficiency: float = 0.35) -> float:
        """Rough sustained throughput under ALOHA efficiency ``expected_efficiency``.

        With defaults this lands near the paper's ~0.02 s/tag figure
        (50 tags/s).
        """
        if not 0.0 < expected_efficiency <= 1.0:
            raise ValueError(
                f"efficiency must be in (0, 1], got {expected_efficiency!r}"
            )
        # Mean slot duration when a fraction `eff` of slots are successes
        # and the rest split between empties and collisions.
        other = 1.0 - expected_efficiency
        mean_slot = (
            expected_efficiency * self.success_slot_s
            + 0.5 * other * self.empty_slot_s
            + 0.5 * other * self.collision_slot_s
        )
        return expected_efficiency / mean_slot


#: Default timing used across the experiments: slow Tari with Miller-4
#: subcarrier encoding at a 128 kHz BLF — the interference-robust
#: profile a 2006-era portal reader (like the paper's Matrics AR400)
#: runs. End-to-end this sustains roughly 0.01-0.02 s per tag, the
#: paper's quoted budget.
DEFAULT_TIMING = Gen2Timing(
    tari_s=25e-6, blf_hz=128e3, tag_encoding_symbols_per_bit=4
)

#: Per-tag read budget quoted in the paper (Section 4).
PAPER_SECONDS_PER_TAG = 0.02
