"""CRC-5 and CRC-16 as specified by EPCglobal Class-1 Generation-2.

Gen 2 protects Query commands with CRC-5 and EPC backscatter (PC + EPC
bits) with CRC-16/CCITT (the X.25 variant: preset 0xFFFF, output
complemented). The implementations operate on bit sequences because
Gen 2 frames are not byte aligned.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

#: Gen 2 CRC-5 polynomial x^5 + x^3 + 1, preset 01001b.
CRC5_POLY = 0b01001
CRC5_PRESET = 0b01001

#: CCITT CRC-16 polynomial x^16 + x^12 + x^5 + 1.
CRC16_POLY = 0x1021
CRC16_PRESET = 0xFFFF


def _require_bits(bits: Sequence[int]) -> None:
    for b in bits:
        if b not in (0, 1):
            raise ValueError(f"bit sequence may contain only 0/1, got {b!r}")


def crc5(bits: Sequence[int]) -> int:
    """CRC-5 of a bit sequence, per Gen 2 Annex F."""
    _require_bits(bits)
    reg = CRC5_PRESET
    for bit in bits:
        msb = (reg >> 4) & 1
        reg = ((reg << 1) & 0b11111) | 0
        if msb ^ bit:
            reg ^= CRC5_POLY
    return reg


def crc16(bits: Sequence[int]) -> int:
    """CRC-16/CCITT of a bit sequence, complemented per Gen 2 Annex F."""
    _require_bits(bits)
    reg = CRC16_PRESET
    for bit in bits:
        msb = (reg >> 15) & 1
        reg = (reg << 1) & 0xFFFF
        if msb ^ bit:
            reg ^= CRC16_POLY
    return reg ^ 0xFFFF


def crc16_bytes(data: bytes) -> int:
    """CRC-16 of whole bytes (MSB-first bit order)."""
    return crc16(bytes_to_bits(data))


def bytes_to_bits(data: bytes) -> List[int]:
    """Expand bytes into an MSB-first bit list."""
    bits: List[int] = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def bits_to_bytes(bits: Sequence[int]) -> bytes:
    """Pack an MSB-first bit list (length divisible by 8) into bytes."""
    _require_bits(bits)
    if len(bits) % 8 != 0:
        raise ValueError(f"bit count {len(bits)} is not a multiple of 8")
    out = bytearray()
    for i in range(0, len(bits), 8):
        byte = 0
        for bit in bits[i : i + 8]:
            byte = (byte << 1) | bit
        out.append(byte)
    return bytes(out)


def int_to_bits(value: int, width: int) -> List[int]:
    """Fixed-width MSB-first bit list of a non-negative integer."""
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value!r}")
    if value >= (1 << width):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return [(value >> shift) & 1 for shift in range(width - 1, -1, -1)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Integer value of an MSB-first bit list."""
    _require_bits(bits)
    value = 0
    for bit in bits:
        value = (value << 1) | bit
    return value


def verify_crc16(payload_bits: Sequence[int], crc_value: int) -> bool:
    """True when ``crc_value`` matches the CRC-16 of ``payload_bits``."""
    return crc16(payload_bits) == crc_value
