"""EPC-96 identifier encoding and decoding (SGTIN-96 layout).

The paper's tags carry "a unique 96 bit identification code". We
implement the SGTIN-96 scheme, the dominant EPC layout for item-level
tagging: an 8-bit header (0x30), 3-bit filter, 3-bit partition, then a
company prefix / item reference split governed by the partition value,
and a 38-bit serial number.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .crc import bits_to_int, int_to_bits

SGTIN96_HEADER = 0x30

#: Partition table from the EPC Tag Data Standard: partition value ->
#: (company prefix bits, company prefix digits, item reference bits,
#: item reference digits).
_PARTITIONS: Tuple[Tuple[int, int, int, int], ...] = (
    (40, 12, 4, 1),
    (37, 11, 7, 2),
    (34, 10, 10, 3),
    (30, 9, 14, 4),
    (27, 8, 17, 5),
    (24, 7, 20, 6),
    (20, 6, 24, 7),
)

SERIAL_BITS = 38
MAX_SERIAL = (1 << SERIAL_BITS) - 1


class EpcError(ValueError):
    """Raised for malformed EPC values."""


@dataclass(frozen=True)
class Sgtin96:
    """A decoded SGTIN-96 EPC.

    Attributes
    ----------
    filter_value:
        3-bit logistic filter (0 = all others, 1 = POS item, ...).
    partition:
        Partition index selecting the company/item bit split.
    company_prefix:
        GS1 company prefix as an integer.
    item_reference:
        Item reference (with indicator digit) as an integer.
    serial:
        38-bit serial number.
    """

    filter_value: int
    partition: int
    company_prefix: int
    item_reference: int
    serial: int

    def __post_init__(self) -> None:
        if not 0 <= self.filter_value < 8:
            raise EpcError(f"filter value {self.filter_value} out of range 0-7")
        if not 0 <= self.partition < len(_PARTITIONS):
            raise EpcError(f"partition {self.partition} out of range 0-6")
        cp_bits, _, ir_bits, _ = _PARTITIONS[self.partition]
        if not 0 <= self.company_prefix < (1 << cp_bits):
            raise EpcError(
                f"company prefix {self.company_prefix} does not fit in "
                f"{cp_bits} bits (partition {self.partition})"
            )
        if not 0 <= self.item_reference < (1 << ir_bits):
            raise EpcError(
                f"item reference {self.item_reference} does not fit in "
                f"{ir_bits} bits (partition {self.partition})"
            )
        if not 0 <= self.serial <= MAX_SERIAL:
            raise EpcError(f"serial {self.serial} does not fit in 38 bits")

    def to_bits(self) -> List[int]:
        """Encode to the 96-bit MSB-first representation."""
        cp_bits, _, ir_bits, _ = _PARTITIONS[self.partition]
        bits: List[int] = []
        bits += int_to_bits(SGTIN96_HEADER, 8)
        bits += int_to_bits(self.filter_value, 3)
        bits += int_to_bits(self.partition, 3)
        bits += int_to_bits(self.company_prefix, cp_bits)
        bits += int_to_bits(self.item_reference, ir_bits)
        bits += int_to_bits(self.serial, SERIAL_BITS)
        assert len(bits) == 96
        return bits

    def to_hex(self) -> str:
        """24-hex-digit canonical form (e.g. ``"30..."``)."""
        return f"{bits_to_int(self.to_bits()):024X}"

    def to_uri(self) -> str:
        """EPC pure-identity URI, ``urn:epc:id:sgtin:...``."""
        _, cp_digits, _, ir_digits = _PARTITIONS[self.partition]
        return (
            "urn:epc:id:sgtin:"
            f"{self.company_prefix:0{cp_digits}d}."
            f"{self.item_reference:0{ir_digits}d}."
            f"{self.serial}"
        )

    @staticmethod
    def from_bits(bits: List[int]) -> "Sgtin96":
        """Decode a 96-bit MSB-first representation.

        Raises
        ------
        EpcError
            On wrong length, wrong header, or invalid partition.
        """
        if len(bits) != 96:
            raise EpcError(f"EPC-96 requires 96 bits, got {len(bits)}")
        header = bits_to_int(bits[0:8])
        if header != SGTIN96_HEADER:
            raise EpcError(
                f"not an SGTIN-96 (header {header:#04x}, expected "
                f"{SGTIN96_HEADER:#04x})"
            )
        filter_value = bits_to_int(bits[8:11])
        partition = bits_to_int(bits[11:14])
        if partition >= len(_PARTITIONS):
            raise EpcError(f"invalid partition value {partition}")
        cp_bits, _, ir_bits, _ = _PARTITIONS[partition]
        pos = 14
        company_prefix = bits_to_int(bits[pos : pos + cp_bits])
        pos += cp_bits
        item_reference = bits_to_int(bits[pos : pos + ir_bits])
        pos += ir_bits
        serial = bits_to_int(bits[pos : pos + SERIAL_BITS])
        return Sgtin96(filter_value, partition, company_prefix, item_reference, serial)

    @staticmethod
    def from_hex(hex_string: str) -> "Sgtin96":
        """Decode the 24-hex-digit canonical form."""
        text = hex_string.strip()
        if len(text) != 24:
            raise EpcError(
                f"EPC-96 hex form requires 24 digits, got {len(text)}"
            )
        try:
            value = int(text, 16)
        except ValueError:
            raise EpcError(f"invalid hex EPC {hex_string!r}") from None
        bits = int_to_bits(value, 96)
        return Sgtin96.from_bits(bits)


class EpcFactory:
    """Hands out unique sequential EPCs for simulated tag populations."""

    def __init__(
        self,
        company_prefix: int = 614141,
        item_reference: int = 812345,
        partition: int = 5,
        filter_value: int = 1,
    ) -> None:
        self._template = Sgtin96(
            filter_value=filter_value,
            partition=partition,
            company_prefix=company_prefix,
            item_reference=item_reference,
            serial=0,
        )
        self._next_serial = 0

    def next_epc(self) -> Sgtin96:
        """The next unique EPC in the sequence."""
        if self._next_serial > MAX_SERIAL:
            raise EpcError("serial space exhausted")
        epc = Sgtin96(
            self._template.filter_value,
            self._template.partition,
            self._template.company_prefix,
            self._template.item_reference,
            self._next_serial,
        )
        self._next_serial += 1
        return epc

    def batch(self, count: int) -> List[Sgtin96]:
        """``count`` unique EPCs."""
        if count < 0:
            raise EpcError(f"count must be non-negative, got {count!r}")
        return [self.next_epc() for _ in range(count)]
