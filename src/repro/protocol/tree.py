"""Binary-tree anti-collision baseline.

The deterministic alternative to ALOHA: the reader walks the binary
prefix tree of tag IDs, splitting every collision into two child
queries (prefix + '0', prefix + '1') until every responding tag sits
alone under its prefix. Guarantees every energized, decodable tag is
eventually read, at the cost of a query count that grows with both
population and ID entropy.

Included as a baseline for the protocol-level ablation: the paper's
reliability problems are physical, and showing they persist under a
deterministic protocol demonstrates that better collision control alone
(scoped out by the paper) cannot fix them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..sim.events import SlotOutcome
from ..sim.rng import RandomStream
from .crc import bytes_to_bits
from .gen2 import ChannelFn, InventoryResult
from .timing import DEFAULT_TIMING, Gen2Timing


def _epc_bits(epc_hex: str) -> List[int]:
    """MSB-first bit expansion of an EPC hex string."""
    try:
        raw = bytes.fromhex(epc_hex)
    except ValueError:
        raise ValueError(f"invalid EPC hex {epc_hex!r}") from None
    return bytes_to_bits(raw)


def _matches_prefix(bits: Sequence[int], prefix: Sequence[int]) -> bool:
    if len(prefix) > len(bits):
        return False
    return all(b == p for b, p in zip(bits, prefix))


@dataclass
class TreeWalkStats:
    """Query accounting for one tree traversal."""

    queries: int = 0
    collisions: int = 0
    max_depth: int = 0


def inventory_tree(
    population: Sequence[str],
    channel: ChannelFn,
    rng: RandomStream,
    time_budget_s: Optional[float] = None,
    timing: Gen2Timing = DEFAULT_TIMING,
    start_time: float = 0.0,
    stats: Optional[TreeWalkStats] = None,
) -> InventoryResult:
    """Depth-first binary tree walk over the energized population.

    Parameters mirror :func:`repro.protocol.gen2.inventory_until`. A
    decode failure re-queues the node for one retry (real tree readers
    re-query garbled prefixes), after which the tag is abandoned for
    the current walk. When a ``time_budget_s`` is given and budget
    remains after a walk completes, the reader starts a fresh walk over
    the still-unread tags — the tree-protocol equivalent of buffered
    continuous mode.
    """
    result = InventoryResult()
    elapsed = 0.0

    energized: Dict[str, float] = {}
    bit_cache: Dict[str, List[int]] = {}
    for epc in population:
        state = channel(epc)
        if state.energized:
            energized[epc] = state.reply_decode_p
            bit_cache[epc] = _epc_bits(epc)

    # Stack of (prefix, retries_left) nodes, LIFO for depth-first order.
    stack: List[tuple] = [((), 1)]
    walk = stats if stats is not None else TreeWalkStats()

    while stack:
        if time_budget_s is not None and elapsed >= time_budget_s:
            break
        prefix, retries = stack.pop()
        if not stack and not prefix and time_budget_s is not None:
            # Root node of a walk: queue the next full walk behind it so
            # leftover budget re-attempts tags whose replies garbled.
            remaining = any(
                epc in energized and epc not in result.read_times
                for epc in bit_cache
            )
            if remaining:
                stack.append(((), 1))
        walk.queries += 1
        walk.max_depth = max(walk.max_depth, len(prefix))
        responders = [
            epc
            for epc, bits in bit_cache.items()
            if epc in energized and _matches_prefix(bits, prefix)
            and epc not in result.read_times
        ]
        slot_time = start_time + elapsed
        result.rounds += 1
        if not responders:
            result.slots.append(SlotOutcome(slot_time, walk.queries, 0))
            elapsed += timing.empty_slot_s
            continue
        if len(responders) == 1:
            epc = responders[0]
            decode_p = energized[epc]
            if rng.bernoulli(decode_p) and rng.bernoulli(decode_p):
                result.slots.append(
                    SlotOutcome(slot_time, walk.queries, 1, epc=epc)
                )
                result.read_epcs.append(epc)
                result.read_times[epc] = slot_time
                elapsed += timing.success_slot_s
            else:
                result.slots.append(SlotOutcome(slot_time, walk.queries, 1))
                elapsed += timing.collision_slot_s
                if retries > 0:
                    stack.append((prefix, retries - 1))
            continue
        # Collision: split the prefix.
        walk.collisions += 1
        result.slots.append(
            SlotOutcome(slot_time, walk.queries, len(responders))
        )
        elapsed += timing.collision_slot_s
        if len(prefix) < 96:
            stack.append((prefix + (1,), 1))
            stack.append((prefix + (0,), 1))
    result.duration_s = elapsed
    return result
