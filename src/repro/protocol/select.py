"""Population filtering via Gen 2 Select (mask matching).

Given a :class:`~repro.protocol.commands.SelectCommand` and a tag
population, this module computes which tags assert/deassert their
selected flag — i.e. which tags a subsequent Query with ``sel`` set
will inventory. Readers use this to keep a busy dock door's airtime
off ambient tags (a neighbouring lane's pallets), the deployment-side
fix for the paper's false-positive concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from .commands import CommandError, SelectCommand
from .crc import bytes_to_bits

#: Bit address where the 96-bit EPC starts inside the EPC memory bank
#: (after the 16-bit StoredCRC and 16-bit StoredPC words).
EPC_BANK_OFFSET_BITS = 0x20


class SelectError(ValueError):
    """Raised for unsupported Select evaluations."""


def _epc_bank_bits(epc_hex: str) -> List[int]:
    """EPC memory-bank contents from the EPC word onward (bit list)."""
    try:
        raw = bytes.fromhex(epc_hex)
    except ValueError:
        raise SelectError(f"invalid EPC hex {epc_hex!r}") from None
    return bytes_to_bits(raw)


def tag_matches(select: SelectCommand, epc_hex: str) -> bool:
    """Does a tag with this EPC match the Select mask?

    Only EPC-bank (bank 1) masks are supported — the only bank our
    simulated tags populate. The pointer is an absolute bit address in
    the bank; the EPC itself begins at ``EPC_BANK_OFFSET_BITS``.
    """
    if select.mem_bank != 1:
        raise SelectError(
            f"only EPC bank (1) masks are supported, got bank {select.mem_bank}"
        )
    if not select.mask:
        return True
    start = select.pointer - EPC_BANK_OFFSET_BITS
    if start < 0:
        # Mask reaches into StoredCRC/StoredPC, which we do not model.
        raise SelectError(
            f"pointer {select.pointer:#x} addresses PC/CRC words; "
            f"EPC starts at {EPC_BANK_OFFSET_BITS:#x}"
        )
    bits = _epc_bank_bits(epc_hex)
    end = start + len(select.mask)
    if end > len(bits):
        return False  # mask runs past the EPC: no match, per spec
    return tuple(bits[start:end]) == tuple(select.mask)


def mask_for_prefix_hex(prefix_hex: str) -> SelectCommand:
    """A Select matching every EPC that starts with ``prefix_hex``.

    Convenience for the common "select this product family" case.
    """
    if not prefix_hex:
        raise SelectError("prefix must be non-empty")
    try:
        nibbles = [int(c, 16) for c in prefix_hex]
    except ValueError:
        raise SelectError(f"invalid hex prefix {prefix_hex!r}") from None
    mask: List[int] = []
    for nibble in nibbles:
        mask.extend((nibble >> shift) & 1 for shift in (3, 2, 1, 0))
    return SelectCommand(
        mem_bank=1, pointer=EPC_BANK_OFFSET_BITS, mask=tuple(mask)
    )


@dataclass
class SelectionState:
    """Selected-flag store across a population.

    Applies Select actions 0 (assert matching / deassert non-matching)
    and 4 (deassert matching / assert non-matching) — the two actions
    portal readers actually use; the other six manipulate session flags
    and are out of scope for the SL-flag workflow modelled here.
    """

    selected: Set[str] = field(default_factory=set)

    def apply(self, select: SelectCommand, population: Iterable[str]) -> None:
        """Update the SL flags of ``population`` per the command."""
        if select.action not in (0, 4):
            raise SelectError(
                f"unsupported Select action {select.action}; use 0 or 4"
            )
        for epc in population:
            matches = tag_matches(select, epc)
            asserts = matches if select.action == 0 else not matches
            if asserts:
                self.selected.add(epc)
            else:
                self.selected.discard(epc)

    def filter(self, population: Sequence[str]) -> List[str]:
        """The sub-population a sel=SL Query would inventory."""
        return [epc for epc in population if epc in self.selected]

    def reset(self) -> None:
        self.selected.clear()
