"""The Gen 2 tag-side state machine.

EPCglobal Class-1 Gen-2 tags move through seven states — Ready,
Arbitrate, Reply, Acknowledged, Open, Secured, Killed — driven by
reader commands and their own slot counters. The inventory simulator
in :mod:`repro.protocol.gen2` abstracts this away for speed; this
module implements the machine faithfully for protocol-level testing,
conformance exploration, and as executable documentation of *why* the
abstractions in ``gen2.py`` are sound (see the equivalence test in
``tests/protocol/test_tag_state.py``).

Access/Kill passwords gate the Open/Secured/Killed states; the paper
explicitly scopes out intentional tag destruction, so ``kill`` here
exists to make the machine complete, not to model attacks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from ..sim.rng import RandomStream
from .commands import (
    AckCommand,
    QueryAdjustCommand,
    QueryCommand,
    QueryRepCommand,
    Session,
    Target,
)


class TagState(enum.Enum):
    READY = "ready"
    ARBITRATE = "arbitrate"
    REPLY = "reply"
    ACKNOWLEDGED = "acknowledged"
    OPEN = "open"
    SECURED = "secured"
    KILLED = "killed"


class TagStateError(RuntimeError):
    """Raised on protocol-violating driver usage (not RF errors)."""


@dataclass
class Gen2TagMachine:
    """One tag's protocol state, advanced by reader commands.

    The machine does not model RF: callers decide whether a command
    "reaches" the tag and whether the tag's reply "reaches" the reader.
    ``energized`` gates everything — an unpowered tag is inert and
    loses all non-persistent state.
    """

    epc: str
    access_password: int = 0
    kill_password: int = 0
    energized: bool = True
    state: TagState = TagState.READY
    #: Inventoried flag per session: False = A, True = B.
    inventoried_b: dict = field(default_factory=lambda: {s: False for s in Session})
    selected: bool = False
    _slot_counter: int = 0
    _session: Optional[Session] = None
    _rn16: Optional[int] = None

    # -- power ------------------------------------------------------------

    def power_up(self) -> None:
        self.energized = True
        self.state = TagState.READY if self.state is not TagState.KILLED else TagState.KILLED

    def power_down(self) -> None:
        """Field loss: S0 flags and all transient state reset.

        S1 decays on its own timer (not modelled here); S2/S3 persist
        while energized only, so they also reset on a true power loss.
        """
        self.energized = False
        if self.state is not TagState.KILLED:
            self.state = TagState.READY
        self._rn16 = None
        self._slot_counter = 0
        self._session = None
        self.inventoried_b[Session.S0] = False
        self.inventoried_b[Session.S2] = False
        self.inventoried_b[Session.S3] = False

    # -- inventory --------------------------------------------------------

    def _participates(self, query: QueryCommand) -> bool:
        flag_b = self.inventoried_b[query.session]
        target_b = query.target is Target.B
        return flag_b == target_b

    def on_query(self, query: QueryCommand, rng: RandomStream) -> Optional[int]:
        """Handle a Query. Returns the RN16 backscattered, if any."""
        if not self.energized or self.state is TagState.KILLED:
            return None
        self._session = query.session
        if not self._participates(query):
            self.state = TagState.READY
            return None
        self._slot_counter = rng.randint(0, (1 << query.q) - 1)
        if self._slot_counter == 0:
            self.state = TagState.REPLY
            self._rn16 = rng.randint(0, 0xFFFF)
            return self._rn16
        self.state = TagState.ARBITRATE
        return None

    def on_query_rep(
        self, command: QueryRepCommand, rng: RandomStream
    ) -> Optional[int]:
        """Handle a QueryRep. Returns an RN16 when the counter expires."""
        if not self.energized or self.state is TagState.KILLED:
            return None
        if self._session is None or command.session != self._session:
            return None
        if self.state is TagState.ARBITRATE:
            self._slot_counter -= 1
            if self._slot_counter <= 0:
                self.state = TagState.REPLY
                self._rn16 = rng.randint(0, 0xFFFF)
                return self._rn16
            return None
        if self.state in (TagState.REPLY, TagState.ACKNOWLEDGED):
            # An un-ACKed replying tag that hears the next QueryRep
            # returns to arbitrate with a fresh... per spec it goes to
            # arbitrate with slot counter 0 decremented -> wraps to max;
            # we model the observable effect: it stops replying this
            # round. An ACKNOWLEDGED tag flips its inventoried flag.
            if self.state is TagState.ACKNOWLEDGED:
                self._flip_inventoried()
            self.state = TagState.ARBITRATE
            self._slot_counter = 1 << 15
            return None
        return None

    def on_query_adjust(
        self, command: QueryAdjustCommand, rng: RandomStream, new_q: int
    ) -> Optional[int]:
        """Handle QueryAdjust: redraw the slot counter for the new Q."""
        if not self.energized or self.state is TagState.KILLED:
            return None
        if self._session is None or command.session != self._session:
            return None
        if self.state not in (TagState.ARBITRATE, TagState.REPLY):
            return None
        if not 0 <= new_q <= 15:
            raise TagStateError(f"adjusted Q out of range: {new_q}")
        self._slot_counter = rng.randint(0, (1 << new_q) - 1)
        if self._slot_counter == 0:
            self.state = TagState.REPLY
            self._rn16 = rng.randint(0, 0xFFFF)
            return self._rn16
        self.state = TagState.ARBITRATE
        return None

    def on_ack(self, command: AckCommand) -> Optional[str]:
        """Handle an ACK. Returns the PC/EPC backscatter on RN16 match."""
        if not self.energized or self.state is TagState.KILLED:
            return None
        if self.state is not TagState.REPLY:
            return None
        if self._rn16 is None or command.rn16 != self._rn16:
            # Wrong handle: the tag returns to arbitrate (spec) — it
            # will not reply again this round.
            self.state = TagState.ARBITRATE
            self._slot_counter = 1 << 15
            return None
        self.state = TagState.ACKNOWLEDGED
        return self.epc

    def end_of_round(self) -> None:
        """Field moves on (new Query or carrier off): settle flags.

        An ACKNOWLEDGED tag counts as inventoried; everyone returns to
        READY for the next round.
        """
        if self.state is TagState.ACKNOWLEDGED:
            self._flip_inventoried()
        if self.state is not TagState.KILLED:
            self.state = TagState.READY

    def _flip_inventoried(self) -> None:
        if self._session is not None:
            self.inventoried_b[self._session] = not self.inventoried_b[
                self._session
            ]

    # -- access / kill ------------------------------------------------------

    def req_access(self, password: int) -> bool:
        """Move an acknowledged tag to Open/Secured with the password."""
        if self.state is not TagState.ACKNOWLEDGED:
            raise TagStateError(
                f"access requires ACKNOWLEDGED, tag is {self.state.value}"
            )
        if password != self.access_password:
            return False
        self.state = (
            TagState.SECURED if self.access_password != 0 else TagState.OPEN
        )
        return True

    def kill(self, password: int) -> bool:
        """Permanently silence the tag (requires a non-zero password)."""
        if self.state not in (TagState.OPEN, TagState.SECURED):
            raise TagStateError(
                f"kill requires OPEN/SECURED, tag is {self.state.value}"
            )
        if password == 0 or password != self.kill_password:
            return False
        self.state = TagState.KILLED
        return True
