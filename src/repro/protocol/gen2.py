"""EPC Gen 2 inventory (singulation) simulator.

Implements the Q-algorithm framed-slotted-ALOHA inventory process of
EPCglobal Class-1 Gen-2: the reader opens a round with a Query carrying
a Q value, energized tags draw a slot counter in ``[0, 2^Q - 1]``,
every QueryRep decrements counters, and a tag replies an RN16 when its
counter hits zero. Singles are ACKed and backscatter their PC/EPC/CRC;
collisions and decode failures waste their slots. The reader adapts Q
between rounds using the standard Qfp floating-point update.

The physical layer enters through a :class:`ChannelFn`: for each read
*attempt* the world model reports whether a tag is energized at all and
with what probability one backscatter reply decodes. This keeps the
protocol simulator reusable for stationary populations (Figure 2),
conveyor passes (Figure 4), and portal dwells (Tables 1-5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sim.events import SlotOutcome
from ..sim.rng import RandomStream
from .timing import DEFAULT_TIMING, Gen2Timing


@dataclass(frozen=True)
class TagChannel:
    """Physical-layer state of one tag for one read attempt.

    Attributes
    ----------
    energized:
        Whether the forward link closes: an un-energized tag is silent
        and does not participate in the round at all.
    reply_decode_p:
        Probability that a single backscatter reply from this tag
        decodes at the reader (reverse-link quality in [0, 1]).
    """

    energized: bool
    reply_decode_p: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.reply_decode_p <= 1.0:
            raise ValueError(
                f"decode probability must be in [0, 1], got {self.reply_decode_p!r}"
            )


#: World-model hook: ``channel(epc) -> TagChannel`` for the current attempt.
ChannelFn = Callable[[str], TagChannel]

#: Observability hook: called once per slot with the outcome and the
#: EPCs that actually responded in it — identity the air interface
#: hides from the reader (a collision is anonymous on real hardware,
#: but the simulator knows who collided). ``None`` (the default) costs
#: one identity check per slot and nothing else.
SlotObserver = Callable[[SlotOutcome, Tuple[str, ...]], None]

SILENT = TagChannel(energized=False, reply_decode_p=0.0)
"""Channel state of a tag that is out of the field entirely."""


@dataclass
class QAlgorithm:
    """Gen 2 Annex D Q-selection: float Qfp nudged by slot outcomes.

    Collisions push Qfp up (frame too small), empties push it down
    (frame too large), successes leave it unchanged.
    """

    q_initial: int = 4
    q_min: int = 0
    q_max: int = 15
    c: float = 0.3

    def __post_init__(self) -> None:
        if not self.q_min <= self.q_initial <= self.q_max:
            raise ValueError(
                f"q_initial {self.q_initial} outside [{self.q_min}, {self.q_max}]"
            )
        if not 0.1 <= self.c <= 0.5:
            raise ValueError(f"C must be in [0.1, 0.5] per Gen 2, got {self.c!r}")
        self._qfp = float(self.q_initial)

    @property
    def q(self) -> int:
        """Current integer Q."""
        return int(round(self._qfp))

    def on_empty(self) -> None:
        self._qfp = max(float(self.q_min), self._qfp - self.c)

    def on_collision(self) -> None:
        self._qfp = min(float(self.q_max), self._qfp + self.c)

    def on_success(self) -> None:
        """Successful singulation leaves Qfp unchanged."""

    def reset(self) -> None:
        self._qfp = float(self.q_initial)


@dataclass
class InventoryResult:
    """Outcome of running inventory rounds over a population."""

    read_epcs: List[str] = field(default_factory=list)
    read_times: Dict[str, float] = field(default_factory=dict)
    slots: List[SlotOutcome] = field(default_factory=list)
    rounds: int = 0
    duration_s: float = 0.0

    @property
    def unique_reads(self) -> Set[str]:
        return set(self.read_epcs)

    @property
    def collisions(self) -> int:
        return sum(1 for s in self.slots if s.kind == "collision")

    @property
    def empties(self) -> int:
        return sum(1 for s in self.slots if s.kind == "empty")

    @property
    def successes(self) -> int:
        return sum(1 for s in self.slots if s.kind == "success")


class InventorySession:
    """Session inventoried-flag store (Gen 2 sessions S0-S3).

    Tags read in a session flip A -> B and stop replying to that
    session's queries until the flag persistence lapses. For portal
    dwell times (a second or two) S1 flags persist through the whole
    pass, which is what lets a reader spend its slots on not-yet-read
    tags — and what our reader model uses.
    """

    def __init__(self) -> None:
        self._flagged: Set[str] = set()

    def is_inventoried(self, epc: str) -> bool:
        return epc in self._flagged

    def mark(self, epc: str) -> None:
        self._flagged.add(epc)

    def reset(self) -> None:
        self._flagged.clear()

    @property
    def inventoried_count(self) -> int:
        return len(self._flagged)


def run_inventory_round(
    population: Sequence[str],
    channel: ChannelFn,
    rng: RandomStream,
    q_algo: QAlgorithm,
    session: Optional[InventorySession] = None,
    timing: Gen2Timing = DEFAULT_TIMING,
    start_time: float = 0.0,
    time_budget_s: Optional[float] = None,
    capture_probability: float = 0.1,
    slot_observer: Optional[SlotObserver] = None,
) -> InventoryResult:
    """Run one full inventory round (one Query + its slots).

    Parameters
    ----------
    population:
        EPC hex strings of every tag physically present.
    channel:
        Physical-layer oracle, consulted once per tag per round for
        energization and per reply for decoding.
    rng:
        Randomness for slot draws, decode Bernoullis, and capture.
    q_algo:
        Adaptive Q state; mutated by slot outcomes.
    session:
        Inventoried-flag store; flagged tags stay silent. ``None`` means
        every round targets the whole population (session S0 with
        immediate flag decay — the paper's "single read" mode).
    timing:
        Air-interface timing used to charge airtime per slot.
    start_time:
        Simulation time at the Query.
    time_budget_s:
        If given, the round is truncated when airtime exceeds the
        budget (the cart left the read zone mid-round).
    capture_probability:
        Probability that the strongest replier of a 2-tag collision is
        captured and decoded anyway (receiver capture effect).
    slot_observer:
        Optional :data:`SlotObserver` invoked once per slot with the
        responder EPCs; used by the observability layer to attribute
        misses to collisions. Never consulted for randomness, so
        enabling it cannot perturb the run.

    Returns
    -------
    InventoryResult
        Reads, per-slot outcomes, and airtime consumed by this round.
    """
    if not 0.0 <= capture_probability <= 1.0:
        raise ValueError(
            f"capture probability must be in [0, 1], got {capture_probability!r}"
        )
    result = InventoryResult()
    result.rounds = 1
    elapsed = timing.query_s
    q = q_algo.q
    frame = 1 << q

    # Determine the contenders: energized, not yet inventoried.
    contenders: Dict[str, TagChannel] = {}
    for epc in population:
        if session is not None and session.is_inventoried(epc):
            continue
        state = channel(epc)
        if state.energized:
            contenders[epc] = state

    # Slot draws.
    counters: Dict[str, int] = {
        epc: rng.randint(0, frame - 1) for epc in contenders
    }

    for slot_index in range(frame):
        if time_budget_s is not None and elapsed >= time_budget_s:
            break
        responders = [epc for epc, ctr in counters.items() if ctr == slot_index]
        slot_time = start_time + elapsed
        if not responders:
            outcome = SlotOutcome(slot_time, slot_index, 0)
            result.slots.append(outcome)
            if slot_observer is not None:
                slot_observer(outcome, ())
            q_algo.on_empty()
            elapsed += timing.empty_slot_s
            continue

        if len(responders) == 1:
            winner: Optional[str] = responders[0]
        else:
            # Collision; maybe the strongest replier captures the receiver.
            winner = None
            if len(responders) == 2 and rng.bernoulli(capture_probability):
                winner = max(responders, key=lambda e: contenders[e].reply_decode_p)
            if winner is None:
                outcome = SlotOutcome(slot_time, slot_index, len(responders))
                result.slots.append(outcome)
                if slot_observer is not None:
                    slot_observer(outcome, tuple(responders))
                q_algo.on_collision()
                elapsed += timing.collision_slot_s
                continue

        # Attempt singulation of the winner: RN16 decode, then EPC decode.
        decode_p = contenders[winner].reply_decode_p
        rn16_ok = rng.bernoulli(decode_p)
        epc_ok = rn16_ok and rng.bernoulli(decode_p)
        if epc_ok:
            outcome = SlotOutcome(
                slot_time, slot_index, len(responders), epc=winner
            )
            result.slots.append(outcome)
            if slot_observer is not None:
                slot_observer(outcome, tuple(responders))
            result.read_epcs.append(winner)
            result.read_times[winner] = slot_time
            if session is not None:
                session.mark(winner)
            q_algo.on_success()
            elapsed += timing.success_slot_s
        else:
            # A garbled reply looks like a collision to the reader.
            outcome = SlotOutcome(slot_time, slot_index, len(responders))
            result.slots.append(outcome)
            if slot_observer is not None:
                slot_observer(outcome, tuple(responders))
            q_algo.on_collision()
            elapsed += timing.collision_slot_s

    result.duration_s = elapsed
    return result


def inventory_until(
    population: Sequence[str],
    channel: ChannelFn,
    rng: RandomStream,
    time_budget_s: float,
    q_algo: Optional[QAlgorithm] = None,
    session: Optional[InventorySession] = None,
    timing: Gen2Timing = DEFAULT_TIMING,
    start_time: float = 0.0,
    capture_probability: float = 0.1,
    slot_observer: Optional[SlotObserver] = None,
) -> InventoryResult:
    """Run back-to-back inventory rounds until a time budget is spent.

    This is the reader's buffered "continuous read" mode from the paper:
    rounds repeat for as long as tags are in the field, and the session
    flags keep already-read tags silent so airtime concentrates on the
    stragglers.
    """
    if time_budget_s < 0.0:
        raise ValueError(f"time budget must be non-negative, got {time_budget_s!r}")
    if q_algo is None:
        q_algo = QAlgorithm()
    own_session = session if session is not None else InventorySession()
    total = InventoryResult()
    elapsed = 0.0
    while elapsed < time_budget_s:
        round_result = run_inventory_round(
            population,
            channel,
            rng,
            q_algo,
            session=own_session,
            timing=timing,
            start_time=start_time + elapsed,
            time_budget_s=time_budget_s - elapsed,
            capture_probability=capture_probability,
            slot_observer=slot_observer,
        )
        total.read_epcs.extend(round_result.read_epcs)
        total.read_times.update(round_result.read_times)
        total.slots.extend(round_result.slots)
        total.rounds += round_result.rounds
        elapsed += round_result.duration_s
        if round_result.duration_s <= 0.0:
            # Degenerate safety valve; a round always costs at least a Query.
            break
        if own_session.inventoried_count >= len(population):
            # Everything read; continuous mode would idle-query, which
            # costs airtime but changes nothing observable.
            break
    total.duration_s = min(elapsed, time_budget_s)
    return total
