"""Reader-to-reader interference and dense-reader mode.

The paper's sharpest negative result: adding a *second reader* to a
portal **reduced** reliability severely, because the readers' carriers
interfered and their Matrics AR400s did not implement Gen 2's optional
dense-reader mode (DRM).

The mechanism: a reader transmits a strong CW carrier continuously
while listening for microwatt backscatter. A neighbouring reader's
carrier, even several channels away, leaks into the listener's receive
band (phase noise + spectral regrowth) and desensitizes it. DRM fixes
this by confining reader transmissions to dedicated spectral channels
and tag backscatter to Miller-subcarrier sidebands between them.

This module computes the interference power one reader's receiver sees
from its neighbours, which the link budget then turns into an elevated
decode floor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from ..rf.geometry import Vec3
from ..rf.units import friis_path_gain_db, sum_powers_dbm

#: Spectral isolation a DRM-compliant reader pair achieves (carriers in
#: dedicated channels, tag backscatter in Miller sidebands between
#: them): pushes the coupled carrier below the receiver's thermal floor,
#: effectively removing reader-on-reader desensitization.
DRM_ISOLATION_DB = 90.0

#: Isolation between two *non*-DRM readers on different hop channels:
#: FHSS helps only when the hop sequences collide rarely, and adjacent-
#: channel leakage remains strong.
NON_DRM_CHANNEL_ISOLATION_DB = 15.0

#: Probability two frequency-hopping non-DRM readers land co-channel in
#: any given dwell (50 FCC channels, but synchronised dwell patterns and
#: adjacent-channel overlap make effective collisions far more common).
CO_CHANNEL_DWELL_PROBABILITY = 0.25


@dataclass(frozen=True)
class ReaderRadio:
    """Placement and RF state of one reader's antenna for interference purposes."""

    reader_id: str
    position: Vec3
    tx_power_dbm: float = 30.0
    antenna_gain_dbi: float = 6.0
    dense_reader_mode: bool = False


def carrier_coupling_db(
    distance_m: float,
    tx_gain_dbi: float,
    rx_gain_dbi: float,
) -> float:
    """Antenna-to-antenna coupling gain between two reader antennas.

    Free-space Friis between the ports; portal antennas usually face
    each other or the same zone, so boresight-ish gains are the
    realistic worst case the paper hit.
    """
    if distance_m <= 0.0:
        raise ValueError(f"distance must be positive, got {distance_m!r}")
    return tx_gain_dbi + rx_gain_dbi + friis_path_gain_db(distance_m)


def interference_at_receiver_dbm(
    victim: ReaderRadio,
    aggressors: Sequence[ReaderRadio],
    co_channel: bool = True,
) -> Optional[float]:
    """In-band interference power at ``victim``'s receiver, or None if quiet.

    Parameters
    ----------
    victim:
        The reader whose receive path is being desensitized.
    aggressors:
        Other simultaneously transmitting readers.
    co_channel:
        Whether this dwell has the hop channels colliding. Callers roll
        this per dwell with :data:`CO_CHANNEL_DWELL_PROBABILITY`.
    """
    levels = []
    for agg in aggressors:
        if agg.reader_id == victim.reader_id:
            continue
        distance = victim.position.distance_to(agg.position)
        if distance <= 0.0:
            distance = 0.01
        coupled = agg.tx_power_dbm + carrier_coupling_db(
            distance, agg.antenna_gain_dbi, victim.antenna_gain_dbi
        )
        if agg.dense_reader_mode and victim.dense_reader_mode:
            coupled -= DRM_ISOLATION_DB
        elif not co_channel:
            coupled -= NON_DRM_CHANNEL_ISOLATION_DB
        levels.append(coupled)
    if not levels:
        return None
    return sum_powers_dbm(*levels)


def tdma_schedule(antenna_ids: Sequence[str], dwell_s: float) -> Sequence[tuple]:
    """Round-robin (antenna_id, start_offset, duration) TDMA schedule.

    One reader multiplexes its antennas in time — "readers employ
    measures such as TDMA to prevent interference between two or more
    of their antennas" — so per-antenna dwell shrinks as antennas are
    added. That shrink is the "slight decrease in performance when
    blocking was not an issue" the paper observed for 2 antennas.
    """
    if not antenna_ids:
        raise ValueError("need at least one antenna")
    if dwell_s <= 0.0:
        raise ValueError(f"dwell must be positive, got {dwell_s!r}")
    slot = dwell_s / len(antenna_ids)
    return tuple(
        (antenna_id, i * slot, slot) for i, antenna_id in enumerate(antenna_ids)
    )
