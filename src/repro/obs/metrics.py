"""Counters, fixed-bucket histograms, and timers for experiment runs.

The registry is deliberately shaped like a serving stack's metrics
layer (think statsd/Prometheus) rather than a statistics library:

* metric **names** are stable strings (``"pass.rounds"``,
  ``"trial.wall_s"``) so recorded runs stay comparable across PRs;
* **histograms** use *fixed* bucket edges declared at creation time, so
  two registries — from two worker processes, or two machines — can be
  merged bucket-by-bucket without resampling;
* everything round-trips through plain dicts (``to_dict`` /
  ``from_dict``), which is how worker processes hand their registries
  back to the parent: serialized with the results, no shared state.

Exact quantiles over small samples (per-trial wall times, a few dozen
values) are computed by :func:`percentile` on the raw values instead of
being estimated from buckets.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default edges for dB-domain margin histograms: fine near 0 (where
#: link closure is decided), coarse in the hopeless tails.
MARGIN_EDGES_DB: Tuple[float, ...] = (
    -40.0, -30.0, -20.0, -15.0, -10.0, -5.0, -2.0, 0.0, 2.0, 5.0, 10.0, 20.0
)

#: Default edges for wall-time histograms (seconds), log-spaced.
SECONDS_EDGES: Tuple[float, ...] = (
    0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 120.0
)


class MetricsError(ValueError):
    """Raised for inconsistent metric declarations or merges."""


def percentile(values: Sequence[float], q: float) -> float:
    """Exact linear-interpolation percentile of raw samples.

    ``q`` is in [0, 100]. Used for the small exact sample sets the
    harness keeps (per-trial wall times), where bucket estimation would
    be needlessly lossy.
    """
    if not values:
        raise MetricsError("cannot take a percentile of no samples")
    if not 0.0 <= q <= 100.0:
        raise MetricsError(f"percentile must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricsError(f"counters only go up, got {amount!r}")
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "counter", "value": self.value}


@dataclass
class Histogram:
    """Fixed-bucket histogram: ``len(edges) + 1`` counts plus moments.

    Bucket ``i`` holds values ``v`` with ``edges[i-1] < v <= edges[i]``
    (bucket 0 is everything at or below ``edges[0]`` ... the last
    bucket is everything above ``edges[-1]``). Fixed edges are the
    merge contract: registries from different processes add counts
    bucket-by-bucket, which only works when the edges match exactly.
    """

    edges: Tuple[float, ...]
    counts: List[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.edges:
            raise MetricsError("a histogram needs at least one bucket edge")
        if list(self.edges) != sorted(self.edges):
            raise MetricsError(f"bucket edges must be sorted: {self.edges!r}")
        if len(set(self.edges)) != len(self.edges):
            raise MetricsError(f"bucket edges must be distinct: {self.edges!r}")
        if not self.counts:
            self.counts = [0] * (len(self.edges) + 1)
        elif len(self.counts) != len(self.edges) + 1:
            raise MetricsError(
                f"{len(self.edges)} edges need {len(self.edges) + 1} "
                f"buckets, got {len(self.counts)}"
            )

    def observe(self, value: float) -> None:
        index = 0
        for edge in self.edges:
            if value <= edge:
                break
            index += 1
        self.counts[index] += 1
        self.total += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.total if self.total else None

    def merge(self, other: "Histogram") -> None:
        if other.edges != self.edges:
            raise MetricsError(
                f"cannot merge histograms with different edges: "
                f"{self.edges!r} vs {other.edges!r}"
            )
        for i, count in enumerate(other.counts):
            self.counts[i] += count
        self.total += other.total
        self.sum += other.sum
        for bound in (other.min,):
            if bound is not None:
                self.min = bound if self.min is None else min(self.min, bound)
        for bound in (other.max,):
            if bound is not None:
                self.max = bound if self.max is None else max(self.max, bound)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "histogram",
            "edges": list(self.edges),
            "counts": list(self.counts),
            "total": self.total,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class Timer:
    """Accumulated wall time with exact per-sample values kept.

    ``samples`` stays exact (experiment runs record at most thousands
    of trials) so :func:`percentile` can answer p50/p95 without bucket
    error; the histogram-style moments come for free.
    """

    samples: List[float] = field(default_factory=list)

    def observe_s(self, seconds: float) -> None:
        if seconds < 0.0:
            raise MetricsError(f"durations are non-negative, got {seconds!r}")
        self.samples.append(seconds)

    def time(self) -> "_TimerContext":
        """Context manager: ``with timer.time(): ...`` records one sample."""
        return _TimerContext(self)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total_s(self) -> float:
        return sum(self.samples)

    def quantile_s(self, q: float) -> float:
        return percentile(self.samples, q)

    def merge(self, other: "Timer") -> None:
        self.samples.extend(other.samples)

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "timer", "samples": list(self.samples)}


class _TimerContext:
    def __init__(self, timer: Timer) -> None:
        self._timer = timer
        self._start = 0.0

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._timer.observe_s(time.perf_counter() - self._start)


class MetricsRegistry:
    """Named metrics, aggregated per pass/trial/sweep-point and mergeable.

    Re-declaring a name returns the existing metric (histogram edges
    must match), so call sites do not need to coordinate creation
    order. Worker processes never share a registry: each builds its
    own, serializes it with :meth:`to_dict`, and the parent merges.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def __len__(self) -> int:
        return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Any]:
        return self._metrics.get(name)

    def _declare(self, name: str, kind: type, factory) -> Any:
        if not name:
            raise MetricsError("metric names must be non-empty")
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise MetricsError(
                    f"metric {name!r} is a {type(existing).__name__}, "
                    f"not a {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._declare(name, Counter, Counter)

    def histogram(
        self, name: str, edges: Sequence[float] = MARGIN_EDGES_DB
    ) -> Histogram:
        metric = self._declare(
            name, Histogram, lambda: Histogram(edges=tuple(edges))
        )
        if metric.edges != tuple(edges):
            raise MetricsError(
                f"histogram {name!r} already declared with edges "
                f"{metric.edges!r}, not {tuple(edges)!r}"
            )
        return metric

    def timer(self, name: str) -> Timer:
        return self._declare(name, Timer, Timer)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (the worker-to-parent direction)."""
        for name, metric in other._metrics.items():
            mine = self._metrics.get(name)
            if mine is None:
                if isinstance(metric, Counter):
                    mine = self.counter(name)
                elif isinstance(metric, Histogram):
                    mine = self.histogram(name, metric.edges)
                elif isinstance(metric, Timer):
                    mine = self.timer(name)
                else:  # pragma: no cover - registry only stores these
                    raise MetricsError(f"unknown metric type for {name!r}")
            mine.merge(metric)

    def merge_counts(self, counts: Dict[str, int]) -> None:
        """Fold a plain name->count mapping into the counters."""
        for name, value in counts.items():
            self.counter(name).inc(value)

    def to_dict(self) -> Dict[str, Any]:
        return {
            name: metric.to_dict()
            for name, metric in sorted(self._metrics.items())
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        for name, entry in doc.items():
            kind = entry.get("kind")
            if kind == "counter":
                registry.counter(name).inc(int(entry["value"]))
            elif kind == "histogram":
                hist = registry.histogram(name, tuple(entry["edges"]))
                hist.counts = [int(c) for c in entry["counts"]]
                hist.total = int(entry["total"])
                hist.sum = float(entry["sum"])
                hist.min = entry["min"]
                hist.max = entry["max"]
            elif kind == "timer":
                timer = registry.timer(name)
                for sample in entry["samples"]:
                    timer.observe_s(float(sample))
            else:
                raise MetricsError(f"unknown metric kind {kind!r} for {name!r}")
        return registry


def summarise_timer(samples: Iterable[float]) -> Dict[str, Optional[float]]:
    """p50/p95/mean summary of a raw duration sample set (or Nones)."""
    values = list(samples)
    if not values:
        return {"count": 0, "mean_s": None, "p50_s": None, "p95_s": None}
    return {
        "count": len(values),
        "mean_s": sum(values) / len(values),
        "p50_s": percentile(values, 50.0),
        "p95_s": percentile(values, 95.0),
    }
