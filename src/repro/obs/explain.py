"""The ``python -m repro explain`` pipeline: why did this tag miss?

Re-runs one pass of a registered scenario with every capture flag on
(link waterfalls, slots, RNG provenance), picks a tag, and renders the
dominant-loss story: the per-term forward link-budget waterfall of the
best dwell the tag ever got, the attributed
:class:`~repro.obs.records.MissCause`, and the pass-level context.
Everything derives from ``(seed, trial)``, so the same invocation
reproduces the same waterfall bit-for-bit.

This module sits *above* the scenario layer (it builds carts and
walks), which is why it is not imported from ``repro.obs.__init__`` —
import it directly or through the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..rf.link import forward_waterfall
from ..sim.rng import SeedSequence
from .recorder import PassObservation, Recorder
from .records import DwellLinkRecord, TagOutcomeRecord


@dataclass(frozen=True)
class ExplainScenario:
    """One named workload the explain pipeline can re-run."""

    name: str
    description: str
    #: Returns ``(simulator, carriers)`` ready for ``run_pass``.
    build: Callable[[], Tuple[Any, List[Any]]]


def _build_cart() -> Tuple[Any, List[Any]]:
    from ..world.objects import BoxFace
    from ..world.portal import single_antenna_portal
    from ..world.scenarios.object_tracking import (
        _make_simulator,
        build_box_cart,
    )

    sim = _make_simulator(single_antenna_portal())
    carrier, _ = build_box_cart([BoxFace.FRONT])
    return sim, [carrier]


def _build_walk() -> Tuple[Any, List[Any]]:
    from ..world.humans import HumanTagPlacement
    from ..world.portal import single_antenna_portal
    from ..world.scenarios.human_tracking import _make_simulator, build_walk

    sim = _make_simulator(single_antenna_portal())
    carrier, _ = build_walk(1, [HumanTagPlacement.FRONT])
    return sim, [carrier]


#: Scenario registry: the workloads ``repro explain`` knows how to run.
EXPLAIN_SCENARIOS: Dict[str, ExplainScenario] = {
    "cart": ExplainScenario(
        "cart",
        "Table 1 box cart (12 boxes, front tags, single antenna)",
        _build_cart,
    ),
    "walk": ExplainScenario(
        "walk",
        "Table 2 walking subject (front tag, single antenna)",
        _build_walk,
    ),
}


def record_waterfall(record: DwellLinkRecord) -> List[Tuple[str, float]]:
    """The ordered waterfall of one recorded dwell (losses negated).

    A short-circuited dwell has no fading draw; its waterfall sums to
    the *no-fading* power at the tag, which is exactly the quantity the
    short-circuit classified as hopeless.
    """
    return forward_waterfall(
        tx_power_dbm=record.tx_power_dbm,
        cable_loss_db=record.cable_loss_db,
        reader_gain_dbi=record.reader_gain_dbi,
        path_gain_db=record.path_gain_db,
        shadowing_db=record.shadowing_db,
        tag_gain_dbi=record.tag_gain_dbi,
        polarization_loss_db=record.polarization_loss_db,
        obstruction_db=record.obstruction_db,
        detuning_db=record.detuning_db,
        coupling_db=record.coupling_db,
        fault_loss_db=record.fault_loss_db,
        fading_db=record.fading_db if record.fading_db is not None else 0.0,
    )


@dataclass(frozen=True)
class Explanation:
    """The rendered-ready result of one explain run."""

    scenario: str
    seed: int
    trial: int
    outcome: TagOutcomeRecord
    #: The dwell where the forward link came closest to closing
    #: (``None`` when the tag never got a link evaluation at all).
    best_dwell: Optional[DwellLinkRecord]
    waterfall: Tuple[Tuple[str, float], ...]
    tag_sensitivity_dbm: float
    pass_summary: Dict[str, Any]

    @property
    def power_at_tag_dbm(self) -> Optional[float]:
        if not self.waterfall:
            return None
        return sum(value for _, value in self.waterfall)

    @property
    def forward_margin_db(self) -> Optional[float]:
        power = self.power_at_tag_dbm
        if power is None:
            return None
        return power - self.tag_sensitivity_dbm

    def to_payload(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "trial": self.trial,
            "tag": self.outcome.to_dict(),
            "best_dwell": (
                self.best_dwell.to_dict()
                if self.best_dwell is not None
                else None
            ),
            "waterfall": [
                {"term": term, "db": value} for term, value in self.waterfall
            ],
            "power_at_tag_dbm": self.power_at_tag_dbm,
            "tag_sensitivity_dbm": self.tag_sensitivity_dbm,
            "forward_margin_db": self.forward_margin_db,
            "pass": self.pass_summary,
        }

    def render(self) -> str:
        out = self.outcome
        lines = [
            f"explain — scenario '{self.scenario}', seed {self.seed}, "
            f"trial {self.trial}",
        ]
        if out.read:
            first = (
                f"{out.first_read_time:.2f}s"
                if out.first_read_time is not None
                else "?"
            )
            lines.append(
                f"tag {out.epc}: READ ({out.reads} reads, first at t={first})"
            )
        else:
            cause = out.cause.value if out.cause is not None else "unknown"
            lines.append(f"tag {out.epc}: MISSED — cause: {cause}")
        lines.append(
            f"  dwells evaluated {out.dwells_evaluated}, "
            f"energized {out.energized_dwells}, "
            f"collision slots {out.collision_slots}, "
            f"garbled solo slots {out.solo_garbled_slots}"
        )
        if self.best_dwell is None:
            lines.append(
                "  no link evaluation recorded for this tag "
                "(it never shared a dwell with a powered antenna)"
            )
        else:
            dwell = self.best_dwell
            note = (
                " (short-circuited: provably hopeless, no fading draw)"
                if dwell.short_circuited
                else ""
            )
            lines.append(
                f"  best dwell: t={dwell.time:.2f}s "
                f"{dwell.reader_id}/{dwell.antenna_id}{note}"
            )
            lines.append("  forward link waterfall:")
            for term, value in self.waterfall:
                unit = "dBm" if term == "tx power (dBm)" else "dB"
                lines.append(f"    {term:<22s} {value:+9.2f} {unit}")
            lines.append(
                f"    {'= power at tag':<22s} "
                f"{self.power_at_tag_dbm:+9.2f} dBm"
            )
            lines.append(
                f"    {'tag sensitivity':<22s} "
                f"{self.tag_sensitivity_dbm:+9.2f} dBm"
            )
            lines.append(
                f"    {'= forward margin':<22s} "
                f"{self.forward_margin_db:+9.2f} dB"
            )
        summary = self.pass_summary
        causes = ", ".join(
            f"{name}={count}"
            for name, count in sorted(summary["miss_causes"].items())
        )
        lines.append(
            f"pass: {summary['population']} tags, {summary['read']} read"
            + (f"; misses by cause: {causes}" if causes else "")
        )
        return "\n".join(lines)


def run_instrumented_pass(
    scenario_name: str, seed: int, trial: int = 0
) -> Tuple[Any, Any, PassObservation]:
    """One fully-captured pass: ``(simulator, result, observation)``."""
    scenario = EXPLAIN_SCENARIOS.get(scenario_name)
    if scenario is None:
        known = ", ".join(sorted(EXPLAIN_SCENARIOS))
        raise ValueError(
            f"unknown explain scenario {scenario_name!r}; known: {known}"
        )
    recorder = Recorder(
        capture_link_budget=True, capture_slots=True, capture_rng=True
    )
    sim, carriers = scenario.build()
    sim.recorder = recorder
    result = sim.run_pass(carriers, SeedSequence(seed), trial)
    return sim, result, result.obs


def _select_outcome(
    observation: PassObservation, tag: Optional[str]
) -> TagOutcomeRecord:
    """Resolve ``--tag`` (EPC, population index, or None = first miss)."""
    outcomes = observation.tag_outcomes
    if tag is None:
        for out in outcomes:
            if not out.read:
                return out
        return outcomes[0]
    for out in outcomes:
        if out.epc == tag:
            return out
    if tag.isdigit() and int(tag) < len(outcomes):
        return outcomes[int(tag)]
    known = ", ".join(out.epc for out in outcomes[:8])
    raise ValueError(
        f"tag {tag!r} is neither an EPC of this pass nor a population "
        f"index; first EPCs: {known}"
    )


def explain_tag(
    scenario_name: str,
    seed: int,
    trial: int = 0,
    tag: Optional[str] = None,
) -> Explanation:
    """Run the pipeline end to end and explain one tag's outcome."""
    sim, _result, observation = run_instrumented_pass(
        scenario_name, seed, trial
    )
    if observation is None:  # pragma: no cover - recorder always attached
        raise ValueError("instrumented pass produced no observation")
    outcome = _select_outcome(observation, tag)
    candidates = [
        rec for rec in observation.link_records if rec.epc == outcome.epc
    ]
    sensitivity = sim.env.tag_sensitivity_dbm
    best: Optional[DwellLinkRecord] = None
    best_power: Optional[float] = None
    for rec in candidates:
        power = sum(value for _, value in record_waterfall(rec))
        if best_power is None or power > best_power:
            best, best_power = rec, power
    waterfall = tuple(record_waterfall(best)) if best is not None else ()
    read_count = sum(1 for out in observation.tag_outcomes if out.read)
    causes: Dict[str, int] = {}
    for out in observation.tag_outcomes:
        if not out.read and out.cause is not None:
            causes[out.cause.value] = causes.get(out.cause.value, 0) + 1
    return Explanation(
        scenario=scenario_name,
        seed=seed,
        trial=trial,
        outcome=outcome,
        best_dwell=best,
        waterfall=waterfall,
        tag_sensitivity_dbm=sensitivity,
        pass_summary={
            "population": len(observation.tag_outcomes),
            "read": read_count,
            "miss_causes": causes,
            "truncated_link_records": observation.truncated_link_records,
        },
    )


def stats_payload(directory: str) -> Dict[str, Any]:
    """Summarise a recorded run directory (manifest + events.jsonl)."""
    from .jsonl import read_events_jsonl
    from .manifest import events_path, read_manifest

    manifest = read_manifest(directory)
    records = read_events_jsonl(events_path(directory))
    by_type: Dict[str, int] = {}
    tags_read = 0
    tags_missed = 0
    causes: Dict[str, int] = {}
    trials = set()
    for record in records:
        doc_type = record.to_dict()["type"]
        by_type[doc_type] = by_type.get(doc_type, 0) + 1
        trial = getattr(record, "trial", None)
        if trial is not None:
            trials.add(trial)
        if isinstance(record, TagOutcomeRecord):
            if record.read:
                tags_read += 1
            else:
                tags_missed += 1
                if record.cause is not None:
                    causes[record.cause.value] = (
                        causes.get(record.cause.value, 0) + 1
                    )
    return {
        "directory": directory,
        "manifest": manifest.to_dict(),
        "events": len(records),
        "events_by_type": dict(sorted(by_type.items())),
        "trials_observed": len(trials),
        "tag_outcomes": {
            "read": tags_read,
            "missed": tags_missed,
            "miss_causes": dict(sorted(causes.items())),
        },
    }


def render_stats(payload: Dict[str, Any]) -> str:
    """Human-readable view of :func:`stats_payload`."""
    manifest = payload["manifest"]
    outcome = payload["tag_outcomes"]
    lines = [
        f"recorded run: {payload['directory']}",
        (
            f"  command={manifest['command']} seed={manifest['seed']} "
            f"workers={manifest['workers']} "
            f"wall={manifest['wall_time_s']:.2f}s"
        ),
        (
            f"  version={manifest['version']} python={manifest['python']} "
            f"config_sha256={manifest['config_sha256'][:12]}…"
        ),
        f"events: {payload['events']} across "
        f"{payload['trials_observed']} trials",
    ]
    for doc_type, count in payload["events_by_type"].items():
        lines.append(f"  {doc_type:<13s} {count}")
    total = outcome["read"] + outcome["missed"]
    if total:
        lines.append(
            f"tag outcomes: {outcome['read']}/{total} read "
            f"({100.0 * outcome['read'] / total:.1f}%)"
        )
        for cause, count in outcome["miss_causes"].items():
            lines.append(f"  miss cause {cause:<16s} {count}")
    return "\n".join(lines)
