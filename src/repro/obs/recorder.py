"""The event bus: per-pass recording, attribution, run-level aggregation.

Three objects split the work so that the hot path stays allocation-free
when observability is off:

* :class:`Recorder` — the run-level handle an experiment owns. It is
  *configuration plus aggregation*: which record kinds to capture, the
  merged :class:`~repro.obs.metrics.MetricsRegistry`, the accumulated
  event list. A simulator holding ``recorder=None`` pays exactly one
  ``is not None`` test per potential hook site and allocates nothing.
* :class:`PassRecording` — the per-pass accumulator the simulator
  drives. One is created per :meth:`run_pass` call; it never crosses a
  process boundary.
* :class:`PassObservation` — the frozen, picklable result of a
  recorded pass, attached to ``PassResult.obs``. This is how parallel
  workers ship their observations home: **with the results**, not
  through shared state. Everything in it is a pure function of the
  seeds, so serial and parallel runs produce identical observations.

Miss-cause attribution (:meth:`PassRecording.finalize`) assigns exactly
one :class:`~repro.obs.records.MissCause` to every tag that produced no
read, by this precedence:

1. ``COLLISION`` — the tag replied in at least one multi-responder slot
   that capture did not resolve;
2. ``NOT_INVENTORIED`` — the tag was energized in at least one dwell
   but never successfully singulated (slot starvation or garbled solo
   replies);
3. ``FAULT_MASKED`` — never energized, and either dwells were skipped
   outright by injected faults (crashed reader, silent antenna) or a
   port-level fault loss is what kept an otherwise within-head-room
   forward link dark;
4. ``UNDER_ENERGIZED`` — never energized although at least one dwell
   was within the fading head-room: the draws were unlucky;
5. ``OUT_OF_ZONE`` — no dwell came within the head-room: the geometry
   never supported a read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..sim.rng import RandomStream, SeedSequence
from .metrics import MARGIN_EDGES_DB, MetricsRegistry
from .records import (
    DwellLinkRecord,
    MaskedDwellRecord,
    MissCause,
    RngStreamRecord,
    SlotRecord,
    SupervisorRecord,
    TagOutcomeRecord,
)


class _TagAggregate:
    """Per-tag rollup of everything seen during one pass (hot path)."""

    __slots__ = (
        "dwells",
        "energized",
        "collision_slots",
        "solo_garbled_slots",
        "best_no_fade_margin_db",
        "best_unfaulted_margin_db",
    )

    def __init__(self) -> None:
        self.dwells = 0
        self.energized = 0
        self.collision_slots = 0
        self.solo_garbled_slots = 0
        self.best_no_fade_margin_db: Optional[float] = None
        self.best_unfaulted_margin_db: Optional[float] = None


@dataclass(frozen=True)
class PassObservation:
    """Everything a recorded pass observed, ready to pickle.

    Deterministic by construction: no wall-clock values, only functions
    of the seeds — so parity checks (serial vs parallel, cached vs
    uncached) hold with recording enabled too.
    """

    trial: int
    tag_outcomes: Tuple[TagOutcomeRecord, ...]
    #: ``MetricsRegistry.to_dict()`` of the per-pass counters and
    #: margin histograms; merged into the run registry on absorb.
    metrics: Dict[str, Any]
    link_records: Tuple[DwellLinkRecord, ...] = ()
    slot_records: Tuple[SlotRecord, ...] = ()
    masked_dwells: Tuple[MaskedDwellRecord, ...] = ()
    supervisor_records: Tuple[SupervisorRecord, ...] = ()
    rng_records: Tuple[RngStreamRecord, ...] = ()
    #: Link records dropped beyond the per-pass cap (0 = complete).
    truncated_link_records: int = 0

    def miss_causes(self) -> Dict[str, MissCause]:
        """EPC -> cause for every missed tag of this pass."""
        return {
            out.epc: out.cause
            for out in self.tag_outcomes
            if not out.read and out.cause is not None
        }

    def outcome_for(self, epc: str) -> Optional[TagOutcomeRecord]:
        for out in self.tag_outcomes:
            if out.epc == epc:
                return out
        return None

    def records(self) -> Iterator[Any]:
        """All typed records of this pass, for JSONL export."""
        for rec in self.tag_outcomes:
            yield rec
        for rec in self.masked_dwells:
            yield rec
        for rec in self.supervisor_records:
            yield rec
        for rec in self.link_records:
            yield rec
        for rec in self.slot_records:
            yield rec
        for rec in self.rng_records:
            yield rec


class PassRecording:
    """Mutable per-pass sink the simulator's hooks write into."""

    def __init__(self, recorder: "Recorder", trial: int) -> None:
        self._recorder = recorder
        self.trial = trial
        self._aggregates: Dict[str, _TagAggregate] = {}
        self._metrics = MetricsRegistry()
        self._forward_hist = self._metrics.histogram(
            "pass.forward_margin_db", MARGIN_EDGES_DB
        )
        self._reverse_hist = self._metrics.histogram(
            "pass.reverse_margin_db", MARGIN_EDGES_DB
        )
        self._link_records: List[DwellLinkRecord] = []
        self._slot_records: List[SlotRecord] = []
        self._masked: List[MaskedDwellRecord] = []
        self._supervisor: List[SupervisorRecord] = []
        self._rng: List[RngStreamRecord] = []
        self._masked_count = 0
        self._truncated = 0

    def _aggregate(self, epc: str) -> _TagAggregate:
        agg = self._aggregates.get(epc)
        if agg is None:
            agg = _TagAggregate()
            self._aggregates[epc] = agg
        return agg

    # -- hooks driven by the simulator ------------------------------------

    def link(
        self,
        record: DwellLinkRecord,
        no_fade_margin_db: float,
    ) -> None:
        """One link-budget evaluation for one (tag, dwell).

        ``no_fade_margin_db`` is the forward margin with the small-scale
        fading term removed — the quantity the head-room classification
        (OUT_OF_ZONE vs UNDER_ENERGIZED) is decided on.
        """
        agg = self._aggregate(record.epc)
        agg.dwells += 1
        if record.energized:
            agg.energized += 1
        unfaulted = no_fade_margin_db + record.fault_loss_db
        if (
            agg.best_no_fade_margin_db is None
            or no_fade_margin_db > agg.best_no_fade_margin_db
        ):
            agg.best_no_fade_margin_db = no_fade_margin_db
        if (
            agg.best_unfaulted_margin_db is None
            or unfaulted > agg.best_unfaulted_margin_db
        ):
            agg.best_unfaulted_margin_db = unfaulted
        self._metrics.counter("pass.link_evals").inc()
        if record.short_circuited:
            self._metrics.counter("pass.short_circuits").inc()
        else:
            if record.forward_margin_db is not None:
                self._forward_hist.observe(record.forward_margin_db)
            if record.reverse_margin_db is not None:
                self._reverse_hist.observe(record.reverse_margin_db)
        if self._recorder.capture_link_budget:
            if len(self._link_records) < self._recorder.max_records_per_pass:
                self._link_records.append(record)
            else:
                self._truncated += 1

    def slot(
        self,
        time: float,
        reader_id: str,
        antenna_id: str,
        slot_index: int,
        responders: Tuple[str, ...],
        outcome: str,
        winner: Optional[str],
    ) -> None:
        """One inventory slot, with responder identities."""
        if outcome == "collision":
            if len(responders) >= 2:
                for epc in responders:
                    self._aggregate(epc).collision_slots += 1
                self._metrics.counter("pass.collision_slots").inc()
            elif len(responders) == 1:
                # A garbled solo reply: the reader files it as a
                # collision, but nobody else was on the air.
                self._aggregate(responders[0]).solo_garbled_slots += 1
                self._metrics.counter("pass.garbled_slots").inc()
        elif outcome == "success":
            self._metrics.counter("pass.success_slots").inc()
        else:
            self._metrics.counter("pass.empty_slots").inc()
        if self._recorder.capture_slots:
            self._slot_records.append(
                SlotRecord(
                    time=time,
                    trial=self.trial,
                    reader_id=reader_id,
                    antenna_id=antenna_id,
                    slot_index=slot_index,
                    responders=responders,
                    outcome=outcome,
                    winner=winner,
                )
            )

    def masked_dwell(
        self,
        time: float,
        reader_id: str,
        antenna_id: Optional[str],
        reason: str,
    ) -> None:
        """A dwell skipped by an injected fault (the blind evidence)."""
        self._masked_count += 1
        self._metrics.counter("pass.masked_dwells").inc()
        self._masked.append(
            MaskedDwellRecord(
                time=time,
                trial=self.trial,
                reader_id=reader_id,
                antenna_id=antenna_id,
                reason=reason,
            )
        )

    def round_complete(self) -> None:
        self._metrics.counter("pass.rounds").inc()

    def supervisor_event(
        self,
        time: float,
        reader_id: str,
        kind: str,
        old: str,
        new: str,
        reason: str = "",
    ) -> None:
        self._metrics.counter("pass.supervisor_events").inc()
        self._supervisor.append(
            SupervisorRecord(
                time=time,
                trial=self.trial,
                reader_id=reader_id,
                kind=kind,
                old=old,
                new=new,
                reason=reason,
            )
        )

    def rng_stream(self, name: str, seed: int) -> None:
        if self._recorder.capture_rng:
            self._rng.append(
                RngStreamRecord(trial=self.trial, name=name, seed=seed)
            )

    # -- attribution -------------------------------------------------------

    def finalize(
        self,
        population: Tuple[str, ...],
        read_epcs: Any,
        first_read_times: Dict[str, float],
        read_counts: Dict[str, int],
        headroom_db: float,
        had_fault_plan: bool,
    ) -> PassObservation:
        """Attribute exactly one cause to every miss; freeze the pass.

        ``headroom_db`` is the simulator's fading head-room constant
        (:data:`repro.world.simulation.MAX_FADING_HEADROOM_DB`): a tag
        whose best no-fading forward margin never came within it could
        not have been energized by any draw.
        """
        outcomes: List[TagOutcomeRecord] = []
        causes = self._metrics  # shorthand for counter bumps below
        for epc in population:
            agg = self._aggregates.get(epc)
            was_read = epc in read_epcs
            cause: Optional[MissCause] = None
            if not was_read:
                cause = self._attribute(agg, headroom_db, had_fault_plan)
                causes.counter(f"pass.miss.{cause.value}").inc()
            else:
                causes.counter("pass.tags_read").inc()
            outcomes.append(
                TagOutcomeRecord(
                    trial=self.trial,
                    epc=epc,
                    read=was_read,
                    cause=cause,
                    first_read_time=first_read_times.get(epc),
                    reads=read_counts.get(epc, 0),
                    dwells_evaluated=agg.dwells if agg else 0,
                    energized_dwells=agg.energized if agg else 0,
                    collision_slots=agg.collision_slots if agg else 0,
                    solo_garbled_slots=agg.solo_garbled_slots if agg else 0,
                    best_no_fade_margin_db=(
                        agg.best_no_fade_margin_db if agg else None
                    ),
                    best_unfaulted_margin_db=(
                        agg.best_unfaulted_margin_db if agg else None
                    ),
                )
            )
        return PassObservation(
            trial=self.trial,
            tag_outcomes=tuple(outcomes),
            metrics=self._metrics.to_dict(),
            link_records=tuple(self._link_records),
            slot_records=tuple(self._slot_records),
            masked_dwells=tuple(self._masked),
            supervisor_records=tuple(self._supervisor),
            rng_records=tuple(self._rng),
            truncated_link_records=self._truncated,
        )

    def _attribute(
        self,
        agg: Optional[_TagAggregate],
        headroom_db: float,
        had_fault_plan: bool,
    ) -> MissCause:
        """The precedence documented in the module docstring."""
        if agg is not None and agg.collision_slots > 0:
            return MissCause.COLLISION
        if agg is not None and agg.energized > 0:
            return MissCause.NOT_INVENTORIED
        # Never energized from here on.
        if had_fault_plan and self._masked_count > 0:
            return MissCause.FAULT_MASKED
        best = agg.best_no_fade_margin_db if agg is not None else None
        unfaulted = agg.best_unfaulted_margin_db if agg is not None else None
        within = best is not None and best + headroom_db >= 0.0
        if (
            had_fault_plan
            and not within
            and unfaulted is not None
            and unfaulted + headroom_db >= 0.0
        ):
            # The injected port loss is what pushed it out of reach.
            return MissCause.FAULT_MASKED
        if within:
            return MissCause.UNDER_ENERGIZED
        return MissCause.OUT_OF_ZONE


class TracingSeedSequence(SeedSequence):
    """A :class:`~repro.sim.rng.SeedSequence` that logs every derivation.

    Wraps the root seed of a pass when ``capture_rng`` is on: each named
    stream handed out is reported (once — re-derivations of the same
    name are deduplicated) to the pass recording as an
    :class:`~repro.obs.records.RngStreamRecord`. Derivation itself is
    untouched, so the streams — and therefore the run — are bit-identical
    with tracing on or off.
    """

    def __init__(self, root_seed: int, recording: PassRecording) -> None:
        super().__init__(root_seed)
        self._recording = recording
        self._seen: set = set()

    def _report(self, name: str, stream: RandomStream) -> RandomStream:
        if name not in self._seen:
            self._seen.add(name)
            self._recording.rng_stream(name, stream.seed)
        return stream

    def stream(self, name: str) -> RandomStream:
        return self._report(name, super().stream(name))

    def trial_stream(self, name: str, trial_index: int) -> RandomStream:
        return self._report(
            f"{name}#trial={trial_index}",
            super().trial_stream(name, trial_index),
        )


class Recorder:
    """Run-level observability handle: capture config + aggregation.

    Hand one to a :class:`~repro.world.simulation.PortalPassSimulator`
    (or a scenario entry point) to turn recording on. The instance is
    picklable — worker processes carry only its *configuration*; their
    observations come back inside each ``PassResult`` and are folded in
    by :meth:`absorb_trial_set` in the parent process.
    """

    def __init__(
        self,
        enabled: bool = True,
        capture_link_budget: bool = False,
        capture_slots: bool = False,
        capture_rng: bool = False,
        keep_events: bool = True,
        max_records_per_pass: int = 20000,
    ) -> None:
        if max_records_per_pass < 0:
            raise ValueError(
                f"max_records_per_pass must be >= 0, got {max_records_per_pass!r}"
            )
        self.enabled = enabled
        self.capture_link_budget = capture_link_budget
        self.capture_slots = capture_slots
        self.capture_rng = capture_rng
        self.keep_events = keep_events
        self.max_records_per_pass = max_records_per_pass
        self.metrics = MetricsRegistry()
        self.events: List[Any] = []
        self.observations: List[PassObservation] = []

    def begin_pass(self, trial: int) -> PassRecording:
        return PassRecording(self, trial)

    # -- aggregation (parent process only) ---------------------------------

    def absorb_observation(self, observation: PassObservation) -> None:
        """Fold one pass's observation into the run totals."""
        self.metrics.merge(MetricsRegistry.from_dict(observation.metrics))
        self.observations.append(observation)
        if self.keep_events:
            self.events.extend(observation.records())

    def absorb_trial_set(self, label: str, trial_set: Any) -> None:
        """Fold a :class:`~repro.core.experiment.TrialSet` in.

        Collects ``PassResult.obs`` observations (however the trials
        were executed — the worker registries arrive serialized inside
        the outcomes) and the per-trial wall times.
        """
        for outcome in getattr(trial_set, "outcomes", []):
            observation = getattr(outcome, "obs", None)
            if observation is not None:
                self.absorb_observation(observation)
        for seconds in getattr(trial_set, "trial_seconds", []):
            self.metrics.timer("trial.wall_s").observe_s(seconds)
            self.metrics.timer(f"trial.wall_s[{label}]").observe_s(seconds)

    def miss_cause_counts(self) -> Dict[str, int]:
        """Total misses by cause across everything absorbed so far."""
        totals: Dict[str, int] = {}
        for cause in MissCause:
            metric = self.metrics.get(f"pass.miss.{cause.value}")
            if metric is not None:
                totals[cause.value] = metric.value
        return totals
