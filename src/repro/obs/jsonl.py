"""JSONL serialization of observability records.

One record per line, ``{"type": ..., **fields}``. Finite floats
round-trip losslessly through Python's ``json`` (it emits ``repr``
shortest-form floats), so a parsed file reproduces the recorded
records bit-for-bit — the same guarantee
:meth:`repro.sim.trace.ReadTrace.to_jsonl` gives for read traces.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterable, Iterator, List

from .records import record_from_dict


def dump_records(records: Iterable[Any]) -> Iterator[str]:
    """Yield one JSON line per record (no trailing newlines)."""
    for record in records:
        yield json.dumps(record.to_dict(), sort_keys=True)


def write_events_jsonl(path: str, records: Iterable[Any]) -> int:
    """Write records to a JSONL file; returns the number written."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in dump_records(records):
            handle.write(line)
            handle.write("\n")
            count += 1
    return count


def parse_records(lines: Iterable[str]) -> Iterator[Any]:
    """Rebuild typed records from JSONL lines (blank lines skipped)."""
    for line in lines:
        stripped = line.strip()
        if not stripped:
            continue
        yield record_from_dict(json.loads(stripped))


def read_events_jsonl(path: str) -> List[Any]:
    """Load every record of an ``events.jsonl`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        return list(parse_records(handle))
