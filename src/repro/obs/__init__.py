"""repro.obs — the observability subsystem.

Zero-cost when disabled, structured when enabled:

* :mod:`repro.obs.records` — typed event records and the
  :class:`~repro.obs.records.MissCause` vocabulary;
* :mod:`repro.obs.metrics` — counters, fixed-bucket histograms and
  timers, mergeable across worker processes;
* :mod:`repro.obs.recorder` — the event bus: per-pass recording,
  miss-cause attribution, run-level aggregation;
* :mod:`repro.obs.manifest` — ``manifest.json`` provenance records;
* :mod:`repro.obs.jsonl` — ``events.jsonl`` round-trip;
* :mod:`repro.obs.explain` — the ``python -m repro explain`` pipeline
  (imported lazily: it depends on the scenario layer).

Quickstart::

    from repro.obs import Recorder
    from repro.world.scenarios import run_table1_experiment

    recorder = Recorder()
    run_table1_experiment(repetitions=2, recorder=recorder)
    print(recorder.miss_cause_counts())
"""

from .jsonl import (
    dump_records,
    parse_records,
    read_events_jsonl,
    write_events_jsonl,
)
from .manifest import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    RunManifest,
    config_hash,
    events_path,
    manifest_path,
    read_manifest,
    write_manifest,
)
from .metrics import (
    MARGIN_EDGES_DB,
    SECONDS_EDGES,
    Counter,
    Histogram,
    MetricsError,
    MetricsRegistry,
    Timer,
    percentile,
    summarise_timer,
)
from .records import (
    RECORD_TYPES,
    DwellLinkRecord,
    MaskedDwellRecord,
    MissCause,
    RngStreamRecord,
    SlotRecord,
    SupervisorRecord,
    TagOutcomeRecord,
    record_from_dict,
)
from .recorder import (
    PassObservation,
    PassRecording,
    Recorder,
    TracingSeedSequence,
)

__all__ = [
    "Counter",
    "DwellLinkRecord",
    "EVENTS_FILENAME",
    "Histogram",
    "MANIFEST_FILENAME",
    "MARGIN_EDGES_DB",
    "MaskedDwellRecord",
    "MetricsError",
    "MetricsRegistry",
    "MissCause",
    "PassObservation",
    "PassRecording",
    "RECORD_TYPES",
    "Recorder",
    "RngStreamRecord",
    "RunManifest",
    "SECONDS_EDGES",
    "SlotRecord",
    "SupervisorRecord",
    "TagOutcomeRecord",
    "Timer",
    "TracingSeedSequence",
    "config_hash",
    "dump_records",
    "events_path",
    "manifest_path",
    "parse_records",
    "percentile",
    "read_events_jsonl",
    "read_manifest",
    "record_from_dict",
    "summarise_timer",
    "write_events_jsonl",
    "write_manifest",
]
