"""Typed observability records and the miss-cause vocabulary.

Every record is a frozen dataclass with a stable ``type`` tag and a
lossless dict round-trip (``to_dict`` / :func:`record_from_dict`),
which is what makes ``events.jsonl`` files self-describing: each line
is one record, ``{"type": ..., **fields}``.

The record set mirrors what a deployed RFID serving stack would need
to operate the system blind-free:

* :class:`DwellLinkRecord` — one link-budget waterfall: every dB-domain
  term of one (reader, antenna, tag, dwell) evaluation;
* :class:`SlotRecord` — one air-interface slot with responder identity
  (the reader itself only sees "collision"; the simulator knows who);
* :class:`TagOutcomeRecord` — the per-pass verdict for one tag: read,
  or missed with exactly one :class:`MissCause`;
* :class:`MaskedDwellRecord` — a dwell the infrastructure never ran
  (crashed reader, silent antenna): the "reader blind" evidence;
* :class:`SupervisorRecord` — health transitions and failover
  promotions from the supervision layer;
* :class:`RngStreamRecord` — RNG-stream provenance: which named stream
  was derived with which seed, the audit trail behind "deterministic".
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Tuple, Type


class MissCause(enum.Enum):
    """Why a tag present in the pass produced no read.

    Exactly one cause is attributed per missed tag, by the precedence
    documented in :meth:`repro.obs.recorder.PassRecording.finalize`.
    """

    #: The forward link never closed, but at least one dwell was within
    #: the fading head-room: an unlucky draw, not hopeless geometry.
    UNDER_ENERGIZED = "under_energized"
    #: The tag replied, but every slot it contended ended in a
    #: multi-tag collision that capture did not resolve.
    COLLISION = "collision"
    #: No dwell came within the fading head-room of waking the chip:
    #: the tag never entered the read zone at all.
    OUT_OF_ZONE = "out_of_zone"
    #: Injected component faults blinded the opportunities: dwells were
    #: skipped outright, or a port-level loss kept an otherwise-closing
    #: forward link below threshold.
    FAULT_MASKED = "fault_masked"
    #: The tag was energized and eligible but was never successfully
    #: singulated before the pass ended (slot starvation, garbled solo
    #: replies).
    NOT_INVENTORIED = "not_inventoried"


@dataclass(frozen=True)
class DwellLinkRecord:
    """One full link-budget evaluation, term by term.

    Sum the gains and subtract the losses in the order listed and you
    reproduce ``forward_power_dbm`` exactly — this record *is* the
    waterfall that ``python -m repro explain`` prints.
    """

    time: float
    trial: int
    reader_id: str
    antenna_id: str
    epc: str
    tx_power_dbm: float
    cable_loss_db: float
    reader_gain_dbi: float
    path_gain_db: float
    shadowing_db: float
    tag_gain_dbi: float
    polarization_loss_db: float
    obstruction_db: float
    detuning_db: float
    coupling_db: float
    fault_loss_db: float
    fading_db: Optional[float]
    interference_dbm: Optional[float]
    forward_power_dbm: Optional[float]
    forward_margin_db: Optional[float]
    reverse_power_dbm: Optional[float]
    reverse_margin_db: Optional[float]
    energized: bool
    #: True when the forward budget provably could not close under any
    #: plausible fading draw and the evaluation stopped early (no
    #: fading draw, no reverse budget — the ``None`` fields above).
    short_circuited: bool

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["type"] = "link"
        return doc


@dataclass(frozen=True)
class SlotRecord:
    """One ALOHA slot, with the responder identities the air hides."""

    time: float
    trial: int
    reader_id: str
    antenna_id: str
    slot_index: int
    responders: Tuple[str, ...]
    #: "empty", "success", or "collision" — the reader's view; a
    #: garbled solo reply is a "collision" to the reader even though
    #: ``len(responders) == 1``.
    outcome: str
    winner: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["type"] = "slot"
        doc["responders"] = list(self.responders)
        return doc


@dataclass(frozen=True)
class TagOutcomeRecord:
    """Per-pass verdict for one tag: read, or missed with one cause."""

    trial: int
    epc: str
    read: bool
    cause: Optional[MissCause]
    first_read_time: Optional[float]
    reads: int
    dwells_evaluated: int
    energized_dwells: int
    collision_slots: int
    solo_garbled_slots: int
    #: Best no-fading forward margin seen across the pass (dB); what
    #: separates OUT_OF_ZONE from UNDER_ENERGIZED.
    best_no_fade_margin_db: Optional[float]
    #: Same margin with injected port losses removed; what separates
    #: FAULT_MASKED from the physics causes.
    best_unfaulted_margin_db: Optional[float]

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["type"] = "tag"
        doc["cause"] = self.cause.value if self.cause is not None else None
        return doc


@dataclass(frozen=True)
class MaskedDwellRecord:
    """A dwell that never ran: the infrastructure was blind, not the RF."""

    time: float
    trial: int
    reader_id: str
    #: ``None`` when the whole reader was down (all its antennas idle).
    antenna_id: Optional[str]
    #: "reader_down" or "antenna_silent".
    reason: str

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["type"] = "masked_dwell"
        return doc


@dataclass(frozen=True)
class SupervisorRecord:
    """A supervision-layer lifecycle event (transition or promotion)."""

    time: float
    trial: int
    reader_id: str
    #: "health" (old -> new) or "promotion" (from -> to).
    kind: str
    old: str
    new: str
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["type"] = "supervisor"
        return doc


@dataclass(frozen=True)
class RngStreamRecord:
    """Provenance of one derived RNG stream."""

    trial: int
    name: str
    seed: int

    def to_dict(self) -> Dict[str, Any]:
        doc = asdict(self)
        doc["type"] = "rng"
        return doc


#: JSONL tag -> record class, for :func:`record_from_dict`.
RECORD_TYPES: Dict[str, Type] = {
    "link": DwellLinkRecord,
    "slot": SlotRecord,
    "tag": TagOutcomeRecord,
    "masked_dwell": MaskedDwellRecord,
    "supervisor": SupervisorRecord,
    "rng": RngStreamRecord,
}


def record_from_dict(doc: Dict[str, Any]) -> Any:
    """Rebuild a typed record from its ``to_dict`` form (lossless)."""
    kind = doc.get("type")
    cls = RECORD_TYPES.get(kind)
    if cls is None:
        raise ValueError(f"unknown record type {kind!r}")
    fields = {k: v for k, v in doc.items() if k != "type"}
    if cls is SlotRecord:
        fields["responders"] = tuple(fields["responders"])
    if cls is TagOutcomeRecord and fields.get("cause") is not None:
        fields["cause"] = MissCause(fields["cause"])
    return cls(**fields)
