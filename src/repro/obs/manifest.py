"""Run manifests: what ran, with what configuration, for how long.

Every recorded experiment writes a ``manifest.json`` next to its
``events.jsonl``. The manifest is the provenance half of
reproducibility: the seed and config hash pin *what* the run was, the
version/platform fields say *where* it ran, and the wall time makes
perf regressions visible across recorded runs.
"""

from __future__ import annotations

import datetime as _datetime
import hashlib
import json
import os
import platform as _platform
import sys
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional

MANIFEST_FILENAME = "manifest.json"
EVENTS_FILENAME = "events.jsonl"


def config_hash(config: Dict[str, Any]) -> str:
    """SHA-256 of the canonical-JSON form of a config mapping.

    Canonical means sorted keys and no whitespace variance, so two runs
    with the same effective configuration hash identically regardless
    of argument order.
    """
    canonical = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunManifest:
    """Provenance record of one experiment run."""

    command: str
    seed: int
    config: Dict[str, Any]
    config_sha256: str
    version: str
    python: str
    platform: str
    started_at: str
    wall_time_s: float
    workers: Optional[int] = None

    @classmethod
    def create(
        cls,
        command: str,
        seed: int,
        config: Dict[str, Any],
        wall_time_s: float,
        workers: Optional[int] = None,
        started_at: Optional[str] = None,
    ) -> "RunManifest":
        """Build a manifest, stamping version/platform and the hash.

        ``started_at`` is injectable so a recorded run is a pure
        function of its inputs: the CLI threads a stamp down from
        ``--started-at`` (or reads the clock once, at that edge). The
        fallback below exists only for direct library callers that do
        not care about byte-reproducible manifests.
        """
        from .. import __version__

        if started_at is None:
            started_at = _datetime.datetime.now(  # repro: allow[det-wallclock] library fallback; the CLI injects the stamp
                _datetime.timezone.utc
            ).isoformat()
        return cls(
            command=command,
            seed=seed,
            config=dict(config),
            config_sha256=config_hash(config),
            version=__version__,
            python=sys.version.split()[0],
            platform=_platform.platform(),
            started_at=started_at,
            wall_time_s=wall_time_s,
            workers=workers,
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "RunManifest":
        return cls(**doc)


def manifest_path(directory: str) -> str:
    return os.path.join(directory, MANIFEST_FILENAME)


def events_path(directory: str) -> str:
    return os.path.join(directory, EVENTS_FILENAME)


def write_manifest(directory: str, manifest: RunManifest) -> str:
    """Write ``manifest.json`` into ``directory`` (created if needed)."""
    os.makedirs(directory, exist_ok=True)
    path = manifest_path(directory)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest.to_dict(), handle, indent=2)
        handle.write("\n")
    return path


def read_manifest(path: str) -> RunManifest:
    """Read a manifest from a file path or a recording directory."""
    if os.path.isdir(path):
        path = manifest_path(path)
    with open(path, "r", encoding="utf-8") as handle:
        return RunManifest.from_dict(json.load(handle))
